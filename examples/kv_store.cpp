// A miniature protected key-value store: the kind of application component
// the paper's system model describes — code living in the same address
// space as the database, using the table layer plus the transactional hash
// index for keyed access, with full corruption protection underneath.
//
//   ./kv_store [directory]

#include <cstdio>
#include <cstring>
#include <string>

#include "cwdb.h"
#include "index/hash_index.h"

using namespace cwdb;

namespace {

constexpr uint32_t kValueBytes = 56;

/// Put/Get/Del over (uint64 key -> fixed 56-byte value), one transaction
/// per call. A real component would batch; this keeps the example linear.
class KvStore {
 public:
  static Result<KvStore> Open(Database* db) {
    auto data = db->FindTable("kv.data");
    if (data.ok()) {
      CWDB_ASSIGN_OR_RETURN(HashIndex index, HashIndex::Open(db, "kv"));
      return KvStore(db, *data, std::move(index));
    }
    CWDB_ASSIGN_OR_RETURN(Transaction * txn, db->Begin());
    CWDB_ASSIGN_OR_RETURN(TableId table,
                          db->CreateTable(txn, "kv.data", kValueBytes, 4096));
    CWDB_ASSIGN_OR_RETURN(HashIndex index,
                          HashIndex::Create(db, txn, "kv", 512, 4096));
    CWDB_RETURN_IF_ERROR(db->Commit(txn));
    return KvStore(db, table, std::move(index));
  }

  Status Put(uint64_t key, const std::string& value) {
    CWDB_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
    Status s = PutIn(txn, key, value);
    if (!s.ok()) {
      (void)db_->Abort(txn);
      return s;
    }
    return db_->Commit(txn);
  }

  Result<std::string> Get(uint64_t key) {
    CWDB_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
    auto slot = index_.Lookup(txn, key);
    if (!slot.ok()) {
      (void)db_->Abort(txn);
      return slot.status();
    }
    std::string record;
    Status s = db_->Read(txn, table_, *slot, &record);
    if (!s.ok()) {
      (void)db_->Abort(txn);
      return s;
    }
    CWDB_RETURN_IF_ERROR(db_->Commit(txn));
    return record.substr(0, record.find('\0'));
  }

  Status Del(uint64_t key) {
    CWDB_ASSIGN_OR_RETURN(Transaction * txn, db_->Begin());
    auto slot = index_.Lookup(txn, key);
    if (!slot.ok()) {
      (void)db_->Abort(txn);
      return slot.status();
    }
    Status s = index_.Erase(txn, key);
    if (s.ok()) s = db_->Delete(txn, table_, *slot);
    if (!s.ok()) {
      (void)db_->Abort(txn);
      return s;
    }
    return db_->Commit(txn);
  }

 private:
  KvStore(Database* db, TableId table, HashIndex index)
      : db_(db), table_(table), index_(std::move(index)) {}

  Status PutIn(Transaction* txn, uint64_t key, const std::string& value) {
    if (value.size() >= kValueBytes) {
      return Status::InvalidArgument("value too large");
    }
    std::string record(kValueBytes, '\0');
    std::memcpy(record.data(), value.data(), value.size());
    auto existing = index_.Lookup(txn, key);
    if (existing.ok()) {  // Overwrite in place.
      return db_->Update(txn, table_, *existing, 0, record);
    }
    CWDB_ASSIGN_OR_RETURN(RecordId rid, db_->Insert(txn, table_, record));
    return index_.Insert(txn, key, rid.slot);
  }

  Database* db_;
  TableId table_;
  HashIndex index_;
};

}  // namespace

int main(int argc, char** argv) {
  DatabaseOptions opts;
  opts.path = argc > 1 ? argv[1] : "/tmp/cwdb_kv";
  opts.arena_size = 8ull << 20;
  opts.protection.scheme = ProtectionScheme::kReadLog;
  opts.protection.region_size = 256;

  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto kv = KvStore::Open(db->get());
  if (!kv.ok()) {
    std::fprintf(stderr, "kv: %s\n", kv.status().ToString().c_str());
    return 1;
  }

  std::printf("put 1..5, overwrite 3, delete 2...\n");
  for (uint64_t k = 1; k <= 5; ++k) {
    if (!kv->Put(k, "value-" + std::to_string(k)).ok()) return 1;
  }
  if (!kv->Put(3, "value-3-updated").ok()) return 1;
  if (!kv->Del(2).ok()) return 1;

  std::printf("crash + recover...\n");
  if (!(*db)->CrashAndRecover().ok()) return 1;
  auto kv2 = KvStore::Open(db->get());
  if (!kv2.ok()) return 1;

  bool ok = true;
  for (uint64_t k = 1; k <= 5; ++k) {
    auto got = kv2->Get(k);
    if (k == 2) {
      std::printf("  get %llu -> %s\n", static_cast<unsigned long long>(k),
                  got.ok() ? got->c_str() : "(not found)");
      ok = ok && got.status().IsNotFound();
    } else {
      std::printf("  get %llu -> %s\n", static_cast<unsigned long long>(k),
                  got.ok() ? got->c_str() : "(MISSING!)");
      ok = ok && got.ok();
      if (k == 3) ok = ok && *got == "value-3-updated";
    }
  }
  auto audit = (*db)->Audit();
  std::printf("audit: %s\n", audit.ok() && audit->clean ? "clean" : "corrupt");
  return ok && audit.ok() && audit->clean ? 0 : 1;
}
