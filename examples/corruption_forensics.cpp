// Corruption forensics walkthrough: the full story of Section 4 of the
// paper. A wild write corrupts a committed record behind the database's
// back; unsuspecting transactions read it and spread the damage; an audit
// catches the codeword mismatch; delete-transaction recovery traces the
// spread through the read log and removes exactly the affected
// transactions from history, reporting their identities for manual
// compensation.
//
//   ./corruption_forensics [directory]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/database.h"
#include "faultinject/fault_injector.h"

using namespace cwdb;

#define DIE_IF_ERROR(expr)                                     \
  do {                                                         \
    ::cwdb::Status _s = (expr);                                \
    if (!_s.ok()) {                                            \
      std::fprintf(stderr, "%s\n", _s.ToString().c_str());     \
      return 1;                                                \
    }                                                          \
  } while (0)

namespace {

constexpr uint32_t kRecordSize = 128;

std::string Cell(Database* db, Transaction* txn, TableId t, uint32_t slot) {
  std::string out;
  Status s = db->Read(txn, t, slot, &out);
  if (!s.ok()) {
    std::string err = "<";
    err += s.ToString();
    err += ">";
    return err;
  }
  return out.substr(0, 12);
}

}  // namespace

int main(int argc, char** argv) {
  DatabaseOptions opts;
  opts.path = argc > 1 ? argv[1] : "/tmp/cwdb_forensics";
  opts.arena_size = 8ull << 20;
  // Read Logging: each read's identity goes to the log — the audit trail
  // that makes corruption traceable (paper §4.2).
  opts.protection.scheme = ProtectionScheme::kReadLog;
  opts.protection.region_size = kRecordSize;  // One region per record.

  // Fresh run each time.
  std::string scrub = "rm -rf '" + opts.path + "'";
  [[maybe_unused]] int rc = ::system(scrub.c_str());

  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  std::printf("== 1. Load ledger and certify a checkpoint ==\n");
  auto txn = (*db)->Begin();
  auto ledger = (*db)->CreateTable(*txn, "ledger", kRecordSize, 32);
  if (!ledger.ok()) return 1;
  uint32_t slots[6];
  const char* names[6] = {"checking", "savings", "escrow",
                          "payroll", "petty", "reserve"};
  for (int i = 0; i < 6; ++i) {
    std::string record(kRecordSize, '\0');
    std::snprintf(record.data(), kRecordSize, "%s:1000", names[i]);
    auto rid = (*db)->Insert(*txn, *ledger, record);
    if (!rid.ok()) return 1;
    slots[i] = rid->slot;
  }
  DIE_IF_ERROR((*db)->Commit(*txn));
  DIE_IF_ERROR((*db)->Checkpoint());
  std::printf("   6 accounts committed; checkpoint certified clean.\n\n");

  std::printf("== 2. A wild write corrupts 'savings' behind our back ==\n");
  FaultInjector inject(db->get(), 2024);
  DbPtr victim = (*db)->image()->RecordOff(*ledger, slots[1]);
  inject.WildWriteAt(victim, "savings:99999999");
  std::printf("   raw bytes now read: %.16s\n\n",
              (*db)->UnsafeRawBase() + victim);

  std::printf("== 3. Business continues, unknowingly spreading damage ==\n");
  // T_carrier reads the corrupted savings balance and "transfers" it.
  txn = (*db)->Begin();
  TxnId carrier = (*txn)->id();
  std::string savings;
  DIE_IF_ERROR((*db)->Read(*txn, *ledger, slots[1], &savings));
  std::string derived = "esc<" + savings.substr(8, 8) + ">";
  DIE_IF_ERROR((*db)->Update(*txn, *ledger, slots[2], 0, derived));
  DIE_IF_ERROR((*db)->Commit(*txn));
  std::printf("   txn %llu read savings and updated escrow from it\n",
              static_cast<unsigned long long>(carrier));

  // T_second reads escrow (indirectly corrupt) and updates payroll.
  txn = (*db)->Begin();
  TxnId second = (*txn)->id();
  std::string escrow;
  DIE_IF_ERROR((*db)->Read(*txn, *ledger, slots[2], &escrow));
  DIE_IF_ERROR((*db)->Update(*txn, *ledger, slots[3],
                             0, "pay<" + escrow.substr(0, 8) + ">"));
  DIE_IF_ERROR((*db)->Commit(*txn));
  std::printf("   txn %llu read escrow and updated payroll from it\n",
              static_cast<unsigned long long>(second));

  // T_clean touches only untainted accounts.
  txn = (*db)->Begin();
  TxnId clean = (*txn)->id();
  std::string checking;
  DIE_IF_ERROR((*db)->Read(*txn, *ledger, slots[0], &checking));
  DIE_IF_ERROR((*db)->Update(*txn, *ledger, slots[4], 0, "petty:42"));
  DIE_IF_ERROR((*db)->Commit(*txn));
  std::printf("   txn %llu read checking and updated petty (clean)\n\n",
              static_cast<unsigned long long>(clean));

  std::printf("== 4. The auditor sweeps the codewords ==\n");
  auto report = (*db)->Audit();
  if (!report.ok()) return 1;
  std::printf("   audit %s", report->clean ? "clean?!\n" : "FAILED: ");
  for (const auto& r : report->ranges) {
    std::printf("region [%llu, +%llu) ", static_cast<unsigned long long>(r.off),
                static_cast<unsigned long long>(r.len));
  }
  std::printf("\n   corruption noted; \"causing the database to crash\"...\n\n");

  std::printf("== 5. Delete-transaction recovery ==\n");
  DIE_IF_ERROR((*db)->CrashAndRecover());
  const RecoveryReport& rr = (*db)->last_recovery_report();
  std::printf("   transactions deleted from history (for manual "
              "compensation):\n      ");
  for (TxnId id : rr.deleted_txns) {
    std::printf("txn %llu%s", static_cast<unsigned long long>(id),
                id == rr.deleted_txns.back() ? "\n" : ", ");
  }
  std::printf("   redo records suppressed: %llu\n\n",
              static_cast<unsigned long long>(rr.redo_records_skipped));

  std::printf("== 6. Post-recovery ledger ==\n");
  txn = (*db)->Begin();
  for (int i = 0; i < 6; ++i) {
    std::printf("   %-10s %s\n", names[i],
                Cell(db->get(), *txn, *ledger, slots[i]).c_str());
  }
  DIE_IF_ERROR((*db)->Commit(*txn));
  auto audit2 = (*db)->Audit();
  std::printf("   final audit: %s\n",
              audit2.ok() && audit2->clean ? "clean" : "CORRUPT");

  std::printf("\n== 7. Why each transaction was deleted ==\n");
  const ProvenanceGraph& graph = rr.provenance;
  for (TxnId id : rr.deleted_txns) {
    std::printf("   txn %llu:\n", static_cast<unsigned long long>(id));
    for (const ProvenanceEdge* e : graph.PathFor(id)) {
      std::printf("      %s via [%llu, +%llu)%s",
                  ProvenanceReasonName(e->reason),
                  static_cast<unsigned long long>(e->via.off),
                  static_cast<unsigned long long>(e->via.len),
                  e->from_txn == 0 ? " <- the corrupt range itself\n" : "");
      if (e->from_txn != 0) {
        std::printf(" <- tainted by txn %llu\n",
                    static_cast<unsigned long long>(e->from_txn));
      }
    }
  }
  std::printf("   (full dossier: cwdb_ctl incidents; graph: cwdb_ctl "
              "explain-recovery --dot)\n");

  bool carrier_deleted =
      std::find(rr.deleted_txns.begin(), rr.deleted_txns.end(), carrier) !=
      rr.deleted_txns.end();
  bool second_deleted =
      std::find(rr.deleted_txns.begin(), rr.deleted_txns.end(), second) !=
      rr.deleted_txns.end();
  bool clean_kept =
      std::find(rr.deleted_txns.begin(), rr.deleted_txns.end(), clean) ==
      rr.deleted_txns.end();
  std::printf(
      "\n   carrier deleted: %s, second-hop deleted: %s, clean kept: %s\n",
      carrier_deleted ? "yes" : "NO", second_deleted ? "yes" : "NO",
      clean_kept ? "yes" : "NO");
  return carrier_deleted && second_deleted && clean_kept &&
                 audit2.ok() && audit2->clean
             ? 0
             : 1;
}
