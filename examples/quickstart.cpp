// Quickstart: open a protected database, define a table, run transactions,
// survive a crash. Start here.
//
//   ./quickstart [directory]

#include <cstdio>
#include <cstring>
#include <string>

#include "core/database.h"

using cwdb::Database;
using cwdb::DatabaseOptions;
using cwdb::ProtectionScheme;
using cwdb::Slice;
using cwdb::Status;

#define DIE_IF_ERROR(expr)                                       \
  do {                                                           \
    ::cwdb::Status _s = (expr);                                  \
    if (!_s.ok()) {                                              \
      std::fprintf(stderr, "%s\n", _s.ToString().c_str());       \
      return 1;                                                  \
    }                                                            \
  } while (0)

int main(int argc, char** argv) {
  DatabaseOptions opts;
  opts.path = argc > 1 ? argv[1] : "/tmp/cwdb_quickstart";
  opts.arena_size = 16ull << 20;  // 16 MiB in-memory database image.

  // Pick a protection scheme: codewords are maintained on every update and
  // the identity of every read is logged, so corruption can be both
  // detected (audits) and traced & repaired (delete-transaction recovery).
  opts.protection.scheme = ProtectionScheme::kReadLog;
  opts.protection.region_size = 512;

  // Record a metrics-history ring and evaluate the default SLOs while we
  // run; both persist on Close so `cwdb_ctl top` and `cwdb_ctl scrub-map`
  // work against the directory afterwards.
  opts.history.interval_ms = 100;
  opts.slo.enabled = true;

  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("opened %s under scheme \"%s\"\n", opts.path.c_str(),
              ProtectionSchemeName(opts.protection.scheme));

  // --- Create a table and insert a few fixed-size records. ---
  struct User {
    uint64_t id;
    char name[24];
  };
  auto find = (*db)->FindTable("users");
  cwdb::TableId users;
  if (find.ok()) {
    users = *find;  // Re-opened an existing database.
    std::printf("found existing table with %llu users\n",
                static_cast<unsigned long long>((*db)->CountRecords(users)));
  } else {
    auto txn = (*db)->Begin();
    auto created = (*db)->CreateTable(*txn, "users", sizeof(User), 1024);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    users = *created;
    DIE_IF_ERROR((*db)->Commit(*txn));
  }

  auto txn = (*db)->Begin();
  cwdb::RecordId alice_id;
  {
    User alice{1, "alice"};
    auto rid = (*db)->Insert(
        *txn, users, Slice(reinterpret_cast<const char*>(&alice), sizeof(alice)));
    if (!rid.ok()) {
      std::fprintf(stderr, "%s\n", rid.status().ToString().c_str());
      return 1;
    }
    alice_id = *rid;
  }
  DIE_IF_ERROR((*db)->Commit(*txn));
  std::printf("inserted alice at slot %u\n", alice_id.slot);

  // --- Update a field in place; the prescribed interface logs undo/redo
  // and maintains the region codeword. ---
  txn = (*db)->Begin();
  DIE_IF_ERROR((*db)->Update(*txn, users, alice_id.slot,
                             offsetof(User, name), Slice("alicia")));
  DIE_IF_ERROR((*db)->Commit(*txn));

  // --- Aborted transactions roll back, physically and logically. ---
  txn = (*db)->Begin();
  DIE_IF_ERROR((*db)->Update(*txn, users, alice_id.slot,
                             offsetof(User, name), Slice("IMPOSTOR")));
  DIE_IF_ERROR((*db)->Abort(*txn));

  // --- Simulate a crash: the un-flushed tail, lock tables and ATT die;
  // restart recovery rebuilds the image from checkpoint + stable log. ---
  DIE_IF_ERROR((*db)->Checkpoint());
  DIE_IF_ERROR((*db)->CrashAndRecover());

  txn = (*db)->Begin();
  User got{};
  std::string record;
  DIE_IF_ERROR((*db)->Read(*txn, users, alice_id.slot, &record));
  std::memcpy(&got, record.data(), sizeof(User));
  DIE_IF_ERROR((*db)->Commit(*txn));
  std::printf("after crash+recovery: user %llu is \"%s\"\n",
              static_cast<unsigned long long>(got.id), got.name);

  // --- The database audits clean: every region matches its codeword. ---
  auto report = (*db)->Audit();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("audit: %s (%llu regions)\n", report->clean ? "clean" : "CORRUPT",
              static_cast<unsigned long long>(report->regions_audited));

  // --- Close checkpoints, flushes the log, and persists a metrics
  // snapshot that `cwdb_ctl stats` can re-emit offline. ---
  DIE_IF_ERROR((*db)->Close());
  return report->clean && std::strcmp(got.name, "alicia") == 0 ? 0 : 1;
}
