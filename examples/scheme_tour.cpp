// Scheme tour: subjects every protection scheme from Table 2 to the same
// addressing error and shows what each one does about it — nothing,
// detection by audit, read-time prevention, traced recovery, or hardware
// prevention. A compact demonstration of the paper's protection matrix.
//
//   ./scheme_tour [base-directory]

#include <cstdio>
#include <cstring>
#include <string>

#include "core/database.h"
#include "faultinject/fault_injector.h"

using namespace cwdb;

namespace {

constexpr uint32_t kRecordSize = 256;

struct Row {
  ProtectionScheme scheme;
  uint32_t region;
};

void RunScheme(const std::string& dir, ProtectionScheme scheme,
               uint32_t region) {
  std::printf("-- %s (region %u) --\n", ProtectionSchemeName(scheme), region);
  DatabaseOptions opts;
  opts.path = dir;
  opts.arena_size = 8ull << 20;
  opts.protection.scheme = scheme;
  opts.protection.region_size = region;
  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::printf("   open failed: %s\n", db.status().ToString().c_str());
    return;
  }

  // One committed record, certified checkpoint.
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", kRecordSize, 16);
  auto rid = (*db)->Insert(*txn, *t, std::string(kRecordSize, 'v'));
  (void)(*db)->Commit(*txn);
  (void)(*db)->Checkpoint();

  // The addressing error.
  FaultInjector inject(db->get(), 1);
  DbPtr off = (*db)->image()->RecordOff(*t, rid->slot);
  auto outcome = inject.WildWriteAt(off, "WILD WRITE");
  std::printf("   wild write: %s\n",
              outcome.prevented ? "PREVENTED by page protection (SIGSEGV trapped)"
                                : "landed in the database image");
  if (outcome.prevented) {
    std::printf("\n");
    return;
  }

  // A transaction tries to use the data.
  txn = (*db)->Begin();
  TxnId reader_id = (*txn)->id();
  std::string got;
  Status rs = (*db)->Read(*txn, *t, rid->slot, &got);
  if (rs.IsCorruption()) {
    std::printf("   read: REFUSED (%s)\n", rs.ToString().c_str());
    (void)(*db)->Abort(*txn);
  } else if (rs.ok()) {
    std::printf("   read: returned %s bytes%s\n",
                got.substr(0, 4) == "WILD" ? "CORRUPT" : "clean",
                scheme == ProtectionScheme::kReadLog ||
                        scheme == ProtectionScheme::kCodewordReadLog
                    ? " (identity logged for tracing)"
                    : "");
    (void)(*db)->Commit(*txn);
  }

  // The audit.
  auto report = (*db)->Audit();
  if (report.ok()) {
    std::printf("   audit: %s\n",
                report->clean ? "clean (no codewords to disagree)"
                              : "detected the corrupt region");
    if (!report->clean) {
      (void)(*db)->CrashAndRecover();
      const RecoveryReport& rr = (*db)->last_recovery_report();
      std::printf("   recovery: image repaired");
      if (!rr.deleted_txns.empty()) {
        std::printf("; deleted carrier txns:");
        for (TxnId id : rr.deleted_txns) {
          std::printf(" %llu", static_cast<unsigned long long>(id));
        }
        (void)reader_id;
      } else {
        std::printf(" by replaying clean history");
      }
      std::printf("\n");
      txn = (*db)->Begin();
      if ((*db)->Read(*txn, *t, rid->slot, &got).ok()) {
        std::printf("   post-recovery read: %s\n",
                    got == std::string(kRecordSize, 'v') ? "original value"
                                                         : "UNEXPECTED");
      }
      (void)(*db)->Commit(*txn);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string base = argc > 1 ? argv[1] : "/tmp/cwdb_scheme_tour";
  std::string scrub = "rm -rf '" + base + "'";
  [[maybe_unused]] int rc = ::system(scrub.c_str());

  std::printf(
      "One addressing error, six schemes (the paper's Table 2 matrix):\n\n");
  const Row rows[] = {
      {ProtectionScheme::kNone, 512},
      {ProtectionScheme::kDataCodeword, 512},
      {ProtectionScheme::kReadPrecheck, 512},
      {ProtectionScheme::kReadLog, 512},
      {ProtectionScheme::kCodewordReadLog, 512},
      {ProtectionScheme::kHardware, 512},
  };
  int i = 0;
  for (const Row& row : rows) {
    RunScheme(base + "/s" + std::to_string(i++), row.scheme, row.region);
  }
  return 0;
}
