// TPC-B demo: runs the paper's workload (§5.2, scaled by a factor given on
// the command line) under a chosen protection scheme and reports
// throughput, protection statistics and the consistency invariants.
//
//   ./tpcb_demo [scheme] [scale] [--serve=SECONDS[:PORT]]
//     scheme: baseline | datacw | precheck | readlog | cwreadlog | hardware
//     scale:  1 = paper size (100k accounts); default 0.1
//     --serve: keep the live stats endpoint up for SECONDS after the run
//              (127.0.0.1, ephemeral port unless PORT given) so an external
//              scraper — e.g. the CI exporter smoke job — can GET /metrics.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/database.h"
#include "workload/tpcb.h"

using namespace cwdb;

int main(int argc, char** argv) {
  unsigned serve_seconds = 0;
  uint16_t serve_port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve_seconds = static_cast<unsigned>(std::atoi(argv[i] + 8));
      if (const char* colon = std::strchr(argv[i] + 8, ':')) {
        serve_port = static_cast<uint16_t>(std::atoi(colon + 1));
      }
      // Shift the flag out so the positional args keep their slots.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  ProtectionScheme scheme = ProtectionScheme::kReadLog;
  if (argc > 1) {
    std::string s = argv[1];
    if (s == "baseline") scheme = ProtectionScheme::kNone;
    else if (s == "datacw") scheme = ProtectionScheme::kDataCodeword;
    else if (s == "precheck") scheme = ProtectionScheme::kReadPrecheck;
    else if (s == "readlog") scheme = ProtectionScheme::kReadLog;
    else if (s == "cwreadlog") scheme = ProtectionScheme::kCodewordReadLog;
    else if (s == "hardware") scheme = ProtectionScheme::kHardware;
    else {
      std::fprintf(stderr,
                   "usage: %s [baseline|datacw|precheck|readlog|cwreadlog|"
                   "hardware] [scale]\n",
                   argv[0]);
      return 2;
    }
  }
  double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  TpcbConfig cfg;
  cfg.accounts = static_cast<uint64_t>(100000 * scale);
  cfg.tellers = static_cast<uint64_t>(10000 * scale);
  cfg.branches = static_cast<uint64_t>(1000 * scale);
  cfg.ops_per_txn = 500;
  const uint64_t ops = static_cast<uint64_t>(50000 * scale);
  cfg.history_capacity = ops + 1000;

  DatabaseOptions opts;
  opts.path = "/tmp/cwdb_tpcb_demo";
  std::string scrub = "rm -rf '" + opts.path + "'";
  [[maybe_unused]] int rc = ::system(scrub.c_str());
  opts.page_size = 8192;
  opts.arena_size = (cfg.MinArenaSize(opts.page_size) + (4u << 20) + 8191) &
                    ~uint64_t{8191};
  opts.protection.scheme = scheme;
  opts.protection.region_size = 512;
  if (serve_seconds > 0) {
    opts.serve_stats = true;
    opts.stats_server.port = serve_port;
    opts.metrics.flush_interval_ms = 1000;
  }

  std::printf("TPC-B demo: %s, %llu accounts / %llu tellers / %llu branches, "
              "%llu ops\n",
              ProtectionSchemeName(scheme),
              static_cast<unsigned long long>(cfg.accounts),
              static_cast<unsigned long long>(cfg.tellers),
              static_cast<unsigned long long>(cfg.branches),
              static_cast<unsigned long long>(ops));

  auto db = Database::Open(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  TpcbWorkload workload(db->get(), cfg);
  Status s = workload.Setup();
  if (!s.ok()) {
    std::fprintf(stderr, "setup: %s\n", s.ToString().c_str());
    return 1;
  }
  auto rate = workload.RunTimed(ops);
  if (!rate.ok()) {
    std::fprintf(stderr, "run: %s\n", rate.status().ToString().c_str());
    return 1;
  }
  s = workload.CheckConsistency();
  std::printf("\n  throughput          : %.0f ops/sec\n", *rate);
  std::printf("  invariants          : %s\n", s.ok() ? "hold" : "VIOLATED");

  DatabaseStats stats = (*db)->GetStats();
  std::printf("  commits             : %llu\n",
              static_cast<unsigned long long>(stats.commits));
  std::printf("  log bytes appended  : %llu (%.1f per op)\n",
              static_cast<unsigned long long>(stats.log_bytes_appended),
              static_cast<double>(stats.log_bytes_appended) /
                  (ops + cfg.accounts + cfg.tellers + cfg.branches));
  std::printf("  codeword folds      : %llu\n",
              static_cast<unsigned long long>(stats.protection.codeword_folds));
  std::printf("  prechecks           : %llu\n",
              static_cast<unsigned long long>(stats.protection.prechecks));
  std::printf("  mprotect calls      : %llu\n",
              static_cast<unsigned long long>(stats.protection.mprotect_calls));
  std::printf("  codeword space      : %llu bytes\n",
              static_cast<unsigned long long>(
                  stats.protection_space_overhead_bytes));

  auto audit = (*db)->Audit();
  std::printf("  final audit         : %s\n",
              audit.ok() && audit->clean ? "clean" : "CORRUPT");

  if (serve_seconds > 0) {
    std::printf("  stats endpoint      : http://127.0.0.1:%u/metrics "
                "(serving %u s)\n",
                static_cast<unsigned>((*db)->stats_port()), serve_seconds);
    std::fflush(stdout);
    ::sleep(serve_seconds);
  }
  return s.ok() ? 0 : 1;
}
