// Logical corruption forensics (the paper's §7 future-work scenario): a
// correctly-functioning but wrongly-coded application writes a bad value
// through the prescribed interface. No codeword ever disagrees — the write
// was "legitimate" — so audits stay clean. Days later an operator notices.
// With Read Logging, the log doubles as an audit trail: lineage queries
// find every transaction influenced by the bad value, and explicit
// delete-transaction recovery removes them from history.
//
//   ./logical_corruption [directory]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "cwdb.h"

using namespace cwdb;

#define DIE_IF_ERROR(expr)                                     \
  do {                                                         \
    ::cwdb::Status _s = (expr);                                \
    if (!_s.ok()) {                                            \
      std::fprintf(stderr, "%s\n", _s.ToString().c_str());     \
      return 1;                                                \
    }                                                          \
  } while (0)

namespace {
constexpr uint32_t kRec = 64;

struct Rate {
  char name[8];
  double value;
  char pad[kRec - 16];
};
static_assert(sizeof(Rate) == kRec);
}  // namespace

int main(int argc, char** argv) {
  DatabaseOptions opts;
  opts.path = argc > 1 ? argv[1] : "/tmp/cwdb_logical";
  std::string scrub = "rm -rf '" + opts.path + "'";
  [[maybe_unused]] int rc = ::system(scrub.c_str());
  opts.arena_size = 8ull << 20;
  opts.protection.scheme = ProtectionScheme::kReadLog;
  opts.protection.region_size = kRec;

  auto db = Database::Open(opts);
  if (!db.ok()) return 1;

  std::printf("== Seed exchange-rate and balance tables ==\n");
  auto txn = (*db)->Begin();
  auto rates = (*db)->CreateTable(*txn, "rates", kRec, 8);
  auto balances = (*db)->CreateTable(*txn, "balances", kRec, 16);
  if (!rates.ok() || !balances.ok()) return 1;
  Rate eur{};
  std::strcpy(eur.name, "EUR");
  eur.value = 1.08;
  auto eur_rid = (*db)->Insert(
      *txn, *rates, Slice(reinterpret_cast<const char*>(&eur), kRec));
  uint32_t bal_slots[4];
  for (int i = 0; i < 4; ++i) {
    Rate b{};
    std::snprintf(b.name, sizeof(b.name), "acct%d", i);
    b.value = 1000.0;
    auto rid = (*db)->Insert(*txn, *balances,
                             Slice(reinterpret_cast<const char*>(&b), kRec));
    bal_slots[i] = rid.ok() ? rid->slot : 0;
  }
  DIE_IF_ERROR((*db)->Commit(*txn));

  // Operators wisely note the log position before the suspect release.
  Lsn before_release = (*db)->CurrentLsn();
  std::printf("   log position before the v2 release: %llu\n\n",
              static_cast<unsigned long long>(before_release));

  std::printf("== The buggy v2 release fat-fingers the EUR rate ==\n");
  txn = (*db)->Begin();
  TxnId buggy_txn = (*txn)->id();
  double wrong = 108.0;  // Decimal slip: 1.08 -> 108.
  DIE_IF_ERROR((*db)->Update(*txn, *rates, eur_rid->slot,
                             offsetof(Rate, value),
                             Slice(reinterpret_cast<const char*>(&wrong), 8)));
  DIE_IF_ERROR((*db)->Commit(*txn));
  std::printf("   txn %llu set EUR = 108.0 (through the prescribed "
              "interface)\n",
              static_cast<unsigned long long>(buggy_txn));

  std::printf("\n== Business happens on top of the wrong rate ==\n");
  auto convert = [&](int slot_idx) -> TxnId {
    auto t = (*db)->Begin();
    TxnId id = (*t)->id();
    double rate;
    (void)(*db)->ReadField(*t, *rates, eur_rid->slot, offsetof(Rate, value),
                           8, &rate);
    double balance;
    (void)(*db)->ReadField(*t, *balances, bal_slots[slot_idx],
                           offsetof(Rate, value), 8, &balance);
    balance *= rate;
    (void)(*db)->Update(*t, *balances, bal_slots[slot_idx],
                        offsetof(Rate, value),
                        Slice(reinterpret_cast<const char*>(&balance), 8));
    (void)(*db)->Commit(*t);
    return id;
  };
  TxnId conv0 = convert(0);
  TxnId conv1 = convert(1);
  // Account 2's transaction never touches the rate.
  txn = (*db)->Begin();
  TxnId untouched = (*txn)->id();
  double dep = 50.0;
  double bal2;
  DIE_IF_ERROR((*db)->ReadField(*txn, *balances, bal_slots[2],
                                offsetof(Rate, value), 8, &bal2));
  bal2 += dep;
  DIE_IF_ERROR((*db)->Update(*txn, *balances, bal_slots[2],
                             offsetof(Rate, value),
                             Slice(reinterpret_cast<const char*>(&bal2), 8)));
  DIE_IF_ERROR((*db)->Commit(*txn));
  std::printf("   conversions: txn %llu, txn %llu; unrelated deposit: txn "
              "%llu\n",
              static_cast<unsigned long long>(conv0),
              static_cast<unsigned long long>(conv1),
              static_cast<unsigned long long>(untouched));

  auto audit = (*db)->Audit();
  std::printf("\n== Audits see nothing (the write was 'legitimate') ==\n");
  std::printf("   audit: %s\n", audit.ok() && audit->clean ? "clean" : "??");

  std::printf("\n== Lineage: what did the bad rate influence? ==\n");
  LineageTracer tracer(db->get());
  CorruptRange bad_range = tracer.RecordRange(*rates, eur_rid->slot);
  auto taint = tracer.TaintClosure({bad_range}, before_release);
  if (!taint.ok()) return 1;
  std::printf("   affected transactions:");
  for (TxnId id : taint->affected_txns) {
    std::printf(" %llu", static_cast<unsigned long long>(id));
  }
  std::printf("\n   tainted bytes: %llu across %zu ranges "
              "(%llu log records scanned)\n",
              static_cast<unsigned long long>(taint->tainted_data.TotalBytes()),
              taint->tainted_data.size(),
              static_cast<unsigned long long>(taint->log_records_scanned));

  std::printf("\n== Recover: delete the influenced transactions ==\n");
  DIE_IF_ERROR((*db)->RecoverFromCorruption({bad_range}, before_release));
  const RecoveryReport& report = (*db)->last_recovery_report();
  std::printf("   deleted:");
  for (TxnId id : report.deleted_txns) {
    std::printf(" %llu", static_cast<unsigned long long>(id));
  }
  std::printf("\n");

  txn = (*db)->Begin();
  double rate_now, b0, b2;
  DIE_IF_ERROR((*db)->ReadField(*txn, *rates, eur_rid->slot,
                                offsetof(Rate, value), 8, &rate_now));
  DIE_IF_ERROR((*db)->ReadField(*txn, *balances, bal_slots[0],
                                offsetof(Rate, value), 8, &b0));
  DIE_IF_ERROR((*db)->ReadField(*txn, *balances, bal_slots[2],
                                offsetof(Rate, value), 8, &b2));
  DIE_IF_ERROR((*db)->Commit(*txn));
  std::printf("\n== Post-recovery state ==\n");
  std::printf("   EUR rate : %.2f   (was 108.0)\n", rate_now);
  std::printf("   acct0    : %.2f   (conversion removed)\n", b0);
  std::printf("   acct2    : %.2f   (unrelated deposit kept)\n", b2);

  bool ok = rate_now == 1.08 && b0 == 1000.0 && b2 == 1050.0 &&
            std::find(report.deleted_txns.begin(), report.deleted_txns.end(),
                      untouched) == report.deleted_txns.end();
  std::printf("\n%s\n", ok ? "logical corruption excised." : "UNEXPECTED");
  return ok ? 0 : 1;
}
