// Checkpointer tests: ping-pong alternation, anchor atomicity, ATT
// serialization round trips, update-consistency of checkpoints taken with
// transactions in flight, and certification audits.

#include <gtest/gtest.h>

#include "ckpt/att_codec.h"
#include "ckpt/checkpoint.h"
#include "common/file_util.h"
#include "core/database.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

class CkptTest : public ::testing::Test {
 protected:
  void Open(ProtectionScheme scheme = ProtectionScheme::kDataCodeword) {
    auto db = Database::Open(SmallDbOptions(dir_.path(), scheme));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }
  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(CkptTest, FreshDatabaseAnchorsToA) {
  Open();
  auto anchor = db_->checkpointer()->ReadAnchor();
  ASSERT_TRUE(anchor.ok());
  EXPECT_EQ(*anchor, 0);
  EXPECT_TRUE(FileExists(dir_.path() + "/ckpt_A.img"));
  EXPECT_TRUE(FileExists(dir_.path() + "/ckpt_B.img"));
}

TEST_F(CkptTest, CheckpointsAlternate) {
  Open();
  ASSERT_OK(db_->Checkpoint());
  auto anchor = db_->checkpointer()->ReadAnchor();
  ASSERT_TRUE(anchor.ok());
  EXPECT_EQ(*anchor, 1);  // A (initial) -> B.
  ASSERT_OK(db_->Checkpoint());
  anchor = db_->checkpointer()->ReadAnchor();
  ASSERT_TRUE(anchor.ok());
  EXPECT_EQ(*anchor, 0);  // -> A.
  // Initial full checkpoint + the two explicit ones.
  EXPECT_EQ(db_->checkpointer()->checkpoints_taken(), 3u);
}

TEST_F(CkptTest, DeltaCheckpointWritesOnlyDirtyPages) {
  Open();
  // First two checkpoints write everything (both images start all-dirty).
  ASSERT_OK(db_->Checkpoint());
  ASSERT_OK(db_->Checkpoint());
  // No writes since: next checkpoint writes nothing.
  ASSERT_OK(db_->Checkpoint());
  EXPECT_EQ(db_->checkpointer()->pages_written_last(), 0u);

  // One small committed update dirties a handful of pages.
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 64);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db_->Insert(*txn, *t, std::string(64, 'd')).ok());
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());
  uint64_t pages = db_->checkpointer()->pages_written_last();
  EXPECT_GT(pages, 0u);
  EXPECT_LT(pages, 16u);  // Far from the full ~1000-page arena.
}

TEST_F(CkptTest, PingPongCoversBothWindows) {
  // A page dirtied once must eventually be written to BOTH images (it is
  // dirty relative to each until that image absorbs it).
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 64);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db_->Insert(*txn, *t, std::string(64, 'p')).ok());
  ASSERT_OK(db_->Commit(*txn));

  ASSERT_OK(db_->Checkpoint());  // Writes to B.
  uint64_t to_b = db_->checkpointer()->pages_written_last();
  ASSERT_OK(db_->Checkpoint());  // Must also write the same data to A.
  uint64_t to_a = db_->checkpointer()->pages_written_last();
  EXPECT_GT(to_b, 0u);
  EXPECT_GT(to_a, 0u);

  // Crash: recovery must find complete data whichever image is active.
  ASSERT_OK(db_->CrashAndRecover());
  EXPECT_EQ(db_->CountRecords(*db_->FindTable("t")), 1u);
}

TEST_F(CkptTest, CheckpointWithOpenTransactionIsUpdateConsistent) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 64);
  ASSERT_TRUE(t.ok());
  auto rid = db_->Insert(*txn, *t, std::string(64, 'c'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));

  // Open transaction updates the record, then a checkpoint runs, then the
  // transaction never commits (crash). The checkpointed ATT's undo log
  // must roll the update back.
  txn = db_->Begin();
  ASSERT_OK(db_->Update(*txn, *t, rid->slot, 0, "UNCOMMITTED"));
  ASSERT_OK(db_->Checkpoint());
  ASSERT_OK(db_->CrashAndRecover());

  auto t2 = db_->FindTable("t");
  ASSERT_TRUE(t2.ok());
  auto txn2 = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn2, *t2, rid->slot, &got));
  EXPECT_EQ(got, std::string(64, 'c'));
  ASSERT_OK(db_->Commit(*txn2));
  EXPECT_EQ(db_->last_recovery_report().rolled_back_txns.size(), 1u);
}

TEST_F(CkptTest, RecoveryUsesCheckpointNotFullLog) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 512);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Insert(*txn, *t, std::string(64, 'x')).ok());
  }
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());

  ASSERT_OK(db_->CrashAndRecover());
  // Everything was in the checkpoint; redo had (almost) nothing to apply.
  EXPECT_EQ(db_->last_recovery_report().redo_records_applied, 0u);
  EXPECT_EQ(db_->CountRecords(*db_->FindTable("t")), 100u);
}

TEST_F(CkptTest, AttCodecRoundTrip) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 64);
  ASSERT_TRUE(t.ok());
  auto rid = db_->Insert(*txn, *t, std::string(64, 'a'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Update(*txn, *t, rid->slot, 4, "zz"));
  // txn still open: 3 logical undo entries (create, insert, update).
  std::string blob = EncodeAtt(*db_->txns());

  // Decode into a scratch manager and compare.
  auto image = DbImage::Create(4 << 20, 4096);
  ASSERT_TRUE(image.ok());
  ProtectionOptions popts;
  auto prot = ProtectionManager::Create(popts, image->get());
  ASSERT_TRUE(prot.ok());
  auto log = SystemLog::Open(dir_.path() + "/scratch.log");
  ASSERT_TRUE(log.ok());
  TxnManager scratch(image->get(), prot->get(), log->get());
  ASSERT_OK(DecodeAttInto(blob, &scratch));
  ASSERT_EQ(scratch.att().size(), 1u);
  const auto& recovered = *scratch.att().begin()->second;
  EXPECT_EQ(recovered.id(), (*txn)->id());
  ASSERT_EQ(recovered.undo_log().size(), 3u);
  EXPECT_EQ(recovered.undo_log()[0].undo.code, UndoCode::kDropTable);
  EXPECT_EQ(recovered.undo_log()[1].undo.code, UndoCode::kDeleteSlot);
  EXPECT_EQ(recovered.undo_log()[2].undo.code, UndoCode::kWriteField);
  EXPECT_EQ(recovered.undo_log()[2].undo.payload.size(), 2u);
  ASSERT_OK(db_->Abort(*txn));
}

TEST_F(CkptTest, AttCodecRejectsTruncation) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 64);
  ASSERT_TRUE(t.ok());
  std::string blob = EncodeAtt(*db_->txns());
  blob.resize(blob.size() / 2);
  auto image = DbImage::Create(4 << 20, 4096);
  ProtectionOptions popts;
  auto prot = ProtectionManager::Create(popts, image->get());
  auto log = SystemLog::Open(dir_.path() + "/scratch2.log");
  TxnManager scratch(image->get(), prot->get(), log->get());
  EXPECT_TRUE(DecodeAttInto(blob, &scratch).IsCorruption());
  ASSERT_OK(db_->Abort(*txn));
}

TEST_F(CkptTest, MetaCrcDetectsTampering) {
  Open();
  ASSERT_OK(db_->Checkpoint());
  auto anchor = db_->checkpointer()->ReadAnchor();
  ASSERT_TRUE(anchor.ok());
  std::string meta_path =
      dir_.path() + (*anchor == 0 ? "/ckpt_A.meta" : "/ckpt_B.meta");
  std::string contents;
  ASSERT_OK(ReadFileToString(meta_path, &contents));
  contents[10] ^= 0xFF;
  ASSERT_OK(WriteFileAtomic(meta_path, contents));
  // Next open must refuse the damaged meta.
  db_.reset();
  auto reopened =
      Database::Open(SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword));
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(CkptTest, CertificationAuditsUntouchedPagesToo) {
  // §4.2: "Even if none of the dirty pages has direct physical corruption,
  // it is possible that a 'clean' page has direct corruption, and a
  // transaction has carried this corruption over to a page that was
  // written out." Certification must therefore audit EVERY page, not just
  // the checkpoint delta.
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 512);
  ASSERT_TRUE(t.ok());
  auto stale = db_->Insert(*txn, *t, std::string(64, 's'));
  ASSERT_TRUE(stale.ok());
  ASSERT_OK(db_->Commit(*txn));
  // Absorb everything into both ping-pong images: `stale` is now clean
  // w.r.t. both, so it will not be in the next checkpoint's delta.
  ASSERT_OK(db_->Checkpoint());
  ASSERT_OK(db_->Checkpoint());

  // Corrupt the untouched record, then dirty a DIFFERENT page.
  db_->UnsafeRawBase()[db_->image()->RecordOff(*t, stale->slot)] ^= 0xFF;
  txn = db_->Begin();
  auto fresh = db_->Insert(*txn, *t, std::string(64, 'f'));
  ASSERT_TRUE(fresh.ok());
  ASSERT_OK(db_->Commit(*txn));

  Status s = db_->Checkpoint();
  EXPECT_TRUE(s.IsCorruption())
      << "certification must audit pages outside the delta";
}

TEST_F(CkptTest, CertifiedCheckpointDoesNotToggleOnCorruption) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 64);
  ASSERT_TRUE(t.ok());
  auto rid = db_->Insert(*txn, *t, std::string(64, 'k'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());
  auto anchor_before = db_->checkpointer()->ReadAnchor();
  ASSERT_TRUE(anchor_before.ok());

  // Corrupt, then attempt a certified checkpoint: must fail and keep the
  // anchor on the clean image.
  db_->UnsafeRawBase()[db_->image()->RecordOff(*t, rid->slot)] ^= 0xFF;
  Status s = db_->Checkpoint();
  EXPECT_TRUE(s.IsCorruption());
  auto anchor_after = db_->checkpointer()->ReadAnchor();
  ASSERT_TRUE(anchor_after.ok());
  EXPECT_EQ(*anchor_before, *anchor_after);
}

}  // namespace
}  // namespace cwdb
