// Cross-scheme compatibility and option validation: a database written
// under one protection scheme must recover correctly when reopened under
// another (the log format is scheme-agnostic; read log records and
// checksums are simply ignored where not needed), and bad options must be
// rejected up front.

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

class SchemeSwitchTest
    : public ::testing::TestWithParam<
          std::pair<ProtectionScheme, ProtectionScheme>> {};

TEST_P(SchemeSwitchTest, ReopenUnderDifferentScheme) {
  TempDir dir;
  RecordId rid;
  {
    auto db = Database::Open(SmallDbOptions(dir.path(), GetParam().first));
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->Begin();
    auto t = (*db)->CreateTable(*txn, "t", 64, 32);
    ASSERT_TRUE(t.ok());
    auto r = (*db)->Insert(*txn, *t, std::string(64, 'm'));
    ASSERT_TRUE(r.ok());
    rid = *r;
    std::string got;
    ASSERT_OK((*db)->Read(*txn, *t, rid.slot, &got));  // May emit read log.
    ASSERT_OK((*db)->Commit(*txn));
    // Destroyed without clean shutdown: reopen must recover from the log.
  }
  auto db = Database::Open(SmallDbOptions(dir.path(), GetParam().second));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = (*db)->FindTable("t");
  ASSERT_TRUE(t.ok());
  auto txn = (*db)->Begin();
  std::string got;
  ASSERT_OK((*db)->Read(*txn, *t, rid.slot, &got));
  EXPECT_EQ(got, std::string(64, 'm'));
  ASSERT_OK((*db)->Commit(*txn));
  auto audit = (*db)->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SchemeSwitchTest,
    ::testing::Values(
        std::make_pair(ProtectionScheme::kReadLog, ProtectionScheme::kNone),
        std::make_pair(ProtectionScheme::kNone, ProtectionScheme::kReadLog),
        std::make_pair(ProtectionScheme::kCodewordReadLog,
                       ProtectionScheme::kDataCodeword),
        std::make_pair(ProtectionScheme::kHardware,
                       ProtectionScheme::kReadPrecheck),
        std::make_pair(ProtectionScheme::kDataCodeword,
                       ProtectionScheme::kHardware)),
    [](const auto& info) {
      auto name = [](ProtectionScheme s) {
        switch (s) {
          case ProtectionScheme::kNone: return "Baseline";
          case ProtectionScheme::kDataCodeword: return "DataCW";
          case ProtectionScheme::kReadPrecheck: return "Precheck";
          case ProtectionScheme::kReadLog: return "ReadLog";
          case ProtectionScheme::kCodewordReadLog: return "CWReadLog";
          case ProtectionScheme::kHardware: return "Hardware";
        }
        return "?";
      };
      return std::string(name(info.param.first)) + "_to_" +
             name(info.param.second);
    });

TEST(SchemeSwitch, RegionSizeChangeIsTransparent) {
  // Codewords are volatile (rebuilt from the image at open), so the region
  // size can change between runs.
  TempDir dir;
  {
    auto db = Database::Open(
        SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword, 64));
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->Begin();
    auto t = (*db)->CreateTable(*txn, "t", 64, 16);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(64, 'z')).ok());
    ASSERT_OK((*db)->Commit(*txn));
  }
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword, 8192));
  ASSERT_TRUE(db.ok());
  auto audit = (*db)->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
  EXPECT_EQ((*db)->CountRecords(*(*db)->FindTable("t")), 1u);
}

TEST(OptionsValidation, RejectsBadConfigurations) {
  TempDir dir;
  {
    DatabaseOptions opts = SmallDbOptions(dir.path() + "/a",
                                          ProtectionScheme::kDataCodeword);
    opts.protection.region_size = 100;  // Not a power of two.
    EXPECT_FALSE(Database::Open(opts).ok());
  }
  {
    DatabaseOptions opts =
        SmallDbOptions(dir.path() + "/b", ProtectionScheme::kNone);
    opts.page_size = 100;  // Not a power of two.
    EXPECT_FALSE(Database::Open(opts).ok());
  }
  {
    DatabaseOptions opts =
        SmallDbOptions(dir.path() + "/c", ProtectionScheme::kNone);
    opts.page_size = 1024;  // Smaller than the OS page.
    EXPECT_FALSE(Database::Open(opts).ok());
  }
  {
    DatabaseOptions opts =
        SmallDbOptions(dir.path() + "/d", ProtectionScheme::kNone);
    opts.arena_size = opts.page_size;  // Too small for the directory.
    EXPECT_FALSE(Database::Open(opts).ok());
  }
  {
    DatabaseOptions opts;  // No path.
    EXPECT_FALSE(Database::Open(opts).ok());
  }
  {
    DatabaseOptions opts = SmallDbOptions(dir.path() + "/e",
                                          ProtectionScheme::kDataCodeword);
    opts.protection.region_size = 4;  // Below the 8-byte minimum.
    EXPECT_FALSE(Database::Open(opts).ok());
  }
}

TEST(OptionsValidation, GeometryMismatchOnReopenIsRefused) {
  TempDir dir;
  {
    auto db =
        Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kNone));
    ASSERT_TRUE(db.ok());
    ASSERT_OK((*db)->Checkpoint());
  }
  DatabaseOptions opts = SmallDbOptions(dir.path(), ProtectionScheme::kNone);
  opts.arena_size *= 2;  // Different geometry than the checkpoint.
  auto db = Database::Open(opts);
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
}

}  // namespace
}  // namespace cwdb
