// Span-tracing tests: deterministic sampling, the lock-free span rings
// under concurrent writers, end-to-end pipeline traces through a real
// database (including the cross-thread hop through the group-commit
// queue), the exporters (spans.json round trip, Chrome/Perfetto JSON,
// latency attribution), and the stall watchdog (fires on a stalled probe,
// files a dossier, stays quiet on healthy progress).

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "common/json.h"
#include "core/database.h"
#include "obs/forensics.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "obs/tracer.h"
#include "obs/watchdog.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

TracerOptions AllOptions() {
  TracerOptions topts;
  topts.sample_rate = 1.0;
  topts.ring_capacity = 1024;
  return topts;
}

// -- Sampler ---------------------------------------------------------------

TEST(TracerTest, DisabledTracerSamplesNothingAndRecordsNothing) {
  Tracer tracer;  // Never Configured: the rate-0 fast path.
  EXPECT_FALSE(tracer.enabled());
  uint64_t root = 0;
  SpanContext ctx = tracer.MaybeStartTrace(&root);
  EXPECT_FALSE(ctx.sampled());
  SpanContext forced = tracer.StartForcedTrace(&root);
  EXPECT_FALSE(forced.sampled());
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TracerTest, SamplingIsDeterministicForAFixedSeed) {
  TracerOptions topts;
  topts.sample_rate = 0.5;
  topts.seed = 12345;
  Tracer a, b;
  a.Configure(topts);
  b.Configure(topts);
  std::vector<bool> da, db;
  uint64_t root = 0;
  for (int i = 0; i < 256; ++i) {
    da.push_back(a.MaybeStartTrace(&root).sampled());
    db.push_back(b.MaybeStartTrace(&root).sampled());
  }
  EXPECT_EQ(da, db);
  // The rate is honored roughly (splitmix64 is uniform; 256 draws at 0.5
  // stray from 128 by more than 64 with probability ~2^-60).
  size_t hits = std::count(da.begin(), da.end(), true);
  EXPECT_GT(hits, 64u);
  EXPECT_LT(hits, 192u);

  // A different seed picks a different subset.
  topts.seed = 54321;
  Tracer c;
  c.Configure(topts);
  std::vector<bool> dc;
  for (int i = 0; i < 256; ++i) {
    dc.push_back(c.MaybeStartTrace(&root).sampled());
  }
  EXPECT_NE(da, dc);
}

TEST(TracerTest, RateOneSamplesEverythingRateNearZeroAlmostNothing) {
  Tracer all;
  all.Configure(AllOptions());
  uint64_t root = 0;
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(all.MaybeStartTrace(&root).sampled());
    EXPECT_NE(root, 0u);
  }
}

// -- Rings under concurrency ----------------------------------------------

TEST(TracerTest, ConcurrentWritersProduceOnlyConsistentSpans) {
  Tracer tracer;
  TracerOptions topts = AllOptions();
  topts.ring_capacity = 256;  // Force wrap under load.
  tracer.Configure(topts);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      uint64_t root = 0;
      for (int i = 0; i < kPerThread; ++i) {
        SpanContext ctx = tracer.MaybeStartTrace(&root);
        ASSERT_TRUE(ctx.sampled());
        tracer.Record(ctx, SpanKind::kWalStage, 100, 200,
                      static_cast<uint64_t>(t), static_cast<uint64_t>(i));
        tracer.RecordWithId(ctx.Under(0), root, SpanKind::kTxn, 100, 300,
                            static_cast<uint64_t>(t));
      }
    });
  }
  // Concurrent reader: every snapshot must be internally consistent even
  // while writers lap the rings.
  for (int i = 0; i < 50; ++i) {
    for (const SpanRecord& s : tracer.Snapshot()) {
      EXPECT_NE(s.span_id, 0u);
      EXPECT_NE(s.trace_id, 0u);
      EXPECT_TRUE(s.kind == SpanKind::kWalStage || s.kind == SpanKind::kTxn);
      EXPECT_TRUE(s.dur_ns == 100 || s.dur_ns == 200) << s.dur_ns;
    }
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread * 2);
  std::vector<SpanRecord> snap = tracer.Snapshot();
  EXPECT_FALSE(snap.empty());
  // No duplicated span ids within one snapshot.
  std::set<uint64_t> ids;
  for (const SpanRecord& s : snap) {
    EXPECT_TRUE(ids.insert(s.span_id).second) << s.span_id;
  }
}

// -- End-to-end pipeline traces -------------------------------------------

DatabaseOptions TracedOptions(const std::string& path) {
  DatabaseOptions opts = SmallDbOptions(path, ProtectionScheme::kDataCodeword);
  opts.trace_sample_rate = 1.0;
  return opts;
}

/// Spans of the snapshot grouped by trace id.
std::map<uint64_t, std::vector<SpanRecord>> ByTrace(
    const std::vector<SpanRecord>& spans) {
  std::map<uint64_t, std::vector<SpanRecord>> out;
  for (const SpanRecord& s : spans) out[s.trace_id].push_back(s);
  return out;
}

const SpanRecord* FindKind(const std::vector<SpanRecord>& spans,
                           SpanKind kind) {
  for (const SpanRecord& s : spans) {
    if (s.kind == kind) return &s;
  }
  return nullptr;
}

TEST(SpanPipelineTest, CommitTraceCrossesTheGroupCommitQueue) {
  TempDir dir;
  auto db = Database::Open(TracedOptions(dir.path()));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  auto table = (*db)->CreateTable(*txn, "t", 64, 128);
  ASSERT_TRUE(table.ok());
  std::string rec(64, 'x');
  ASSERT_TRUE((*db)->Insert(*txn, *table, rec).ok());
  const TxnId id = (*txn)->id();
  ASSERT_OK((*db)->Commit(*txn));

  std::vector<SpanRecord> spans = (*db)->metrics()->tracer()->Snapshot();
  // Locate this transaction's trace via its root span (a = txn id).
  uint64_t trace_id = 0;
  for (const SpanRecord& s : spans) {
    if (s.kind == SpanKind::kTxn && s.parent_id == 0 && s.a == id) {
      trace_id = s.trace_id;
    }
  }
  ASSERT_NE(trace_id, 0u);
  std::vector<SpanRecord> mine = ByTrace(spans)[trace_id];

  const SpanRecord* root = FindKind(mine, SpanKind::kTxn);
  const SpanRecord* begin = FindKind(mine, SpanKind::kTxnBegin);
  const SpanRecord* fold = FindKind(mine, SpanKind::kCodewordFold);
  const SpanRecord* stage = FindKind(mine, SpanKind::kWalStage);
  const SpanRecord* flush = FindKind(mine, SpanKind::kFlushWait);
  const SpanRecord* queue = FindKind(mine, SpanKind::kQueueWait);
  const SpanRecord* fsync = FindKind(mine, SpanKind::kFsync);
  const SpanRecord* ack = FindKind(mine, SpanKind::kCommitAck);
  ASSERT_NE(root, nullptr);
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(fold, nullptr);
  ASSERT_NE(stage, nullptr);
  ASSERT_NE(flush, nullptr);
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(fsync, nullptr);
  ASSERT_NE(ack, nullptr);

  // Client-side pipeline spans are children of the root.
  EXPECT_EQ(begin->parent_id, root->span_id);
  EXPECT_EQ(stage->parent_id, root->span_id);
  EXPECT_EQ(flush->parent_id, root->span_id);
  EXPECT_EQ(ack->parent_id, root->span_id);
  // Drainer-side spans parent to the flush-wait span: the context rode the
  // queue entry across the thread hop, same trace id throughout.
  EXPECT_EQ(queue->parent_id, flush->span_id);
  EXPECT_EQ(fsync->parent_id, flush->span_id);
  // The two halves really ran on different threads.
  EXPECT_NE(fsync->tid, root->tid);
  // And the span tree is temporally sane.
  EXPECT_LE(root->start_ns, begin->start_ns);
  EXPECT_LE(stage->start_ns, flush->start_ns);

  ASSERT_OK((*db)->Close());
  // Close() persisted the dump for post-mortem tooling.
  EXPECT_TRUE(FileExists(dir.path() + "/spans.json"));
}

TEST(SpanPipelineTest, AbortedTransactionRootIsMarked) {
  TempDir dir;
  auto db = Database::Open(TracedOptions(dir.path()));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  const TxnId id = (*txn)->id();
  ASSERT_OK((*db)->Abort(*txn));
  bool found = false;
  for (const SpanRecord& s : (*db)->metrics()->tracer()->Snapshot()) {
    if (s.kind == SpanKind::kTxn && s.a == id) {
      found = true;
      EXPECT_EQ(s.b, 1u) << "aborted root must carry b=1";
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpanPipelineTest, CheckpointAndRecoveryAreForceTraced) {
  TempDir dir;
  auto db = Database::Open(TracedOptions(dir.path()));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_OK((*db)->Checkpoint());
  std::vector<SpanRecord> spans = (*db)->metrics()->tracer()->Snapshot();
  const SpanRecord* ckpt = FindKind(spans, SpanKind::kCheckpoint);
  ASSERT_NE(ckpt, nullptr);
  EXPECT_EQ(ckpt->parent_id, 0u);
  std::vector<SpanRecord> mine = ByTrace(spans)[ckpt->trace_id];
  EXPECT_NE(FindKind(mine, SpanKind::kCheckpointCopy), nullptr);
  EXPECT_NE(FindKind(mine, SpanKind::kCheckpointWrite), nullptr);
  EXPECT_NE(FindKind(mine, SpanKind::kCheckpointFsync), nullptr);

  ASSERT_OK((*db)->CrashAndRecover());
  spans = (*db)->metrics()->tracer()->Snapshot();
  const SpanRecord* rec = FindKind(spans, SpanKind::kRecovery);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->parent_id, 0u);
  EXPECT_NE(FindKind(ByTrace(spans)[rec->trace_id], SpanKind::kRecoveryPhase),
            nullptr);
}

// -- Exporters -------------------------------------------------------------

TEST(SpanExportTest, EmptyDumpsAreValidDocuments) {
  SpanDump empty;
  Result<JsonValue> chrome = ParseJson(SpansToChromeJson(empty));
  ASSERT_TRUE(chrome.ok()) << chrome.status().ToString();
  const JsonValue* events = chrome->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array().empty());
  Result<SpanDump> round = ParseSpansJson(SpansToJson(empty));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(round->spans.empty());
}

TEST(SpanExportTest, SpansJsonRoundTripsAndChromeJsonParses) {
  TempDir dir;
  auto db = Database::Open(TracedOptions(dir.path()));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (int i = 0; i < 4; ++i) {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_OK((*db)->Commit(*txn));
  }
  std::vector<SpanRecord> live = (*db)->metrics()->tracer()->Snapshot();
  ASSERT_OK((*db)->Close());

  std::string json;
  ASSERT_OK(ReadFileToString(dir.path() + "/spans.json", &json));
  Result<SpanDump> dump = ParseSpansJson(json);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_GE(dump->spans.size(), live.size());
  EXPECT_GT(dump->captured_wall_ns, 0u);

  // Chrome export: a valid JSON document whose event count matches.
  std::string chrome = SpansToChromeJson(*dump);
  Result<JsonValue> doc = ParseJson(chrome);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array().size(), dump->spans.size());
  for (const JsonValue& ev : events->array()) {
    EXPECT_EQ(ev.Str("ph"), "X");
    EXPECT_FALSE(ev.Str("name").empty());
  }
}

TEST(SpanExportTest, AttributionSharesCoverTheCommitTime) {
  TempDir dir;
  auto db = Database::Open(TracedOptions(dir.path()));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto setup = (*db)->Begin();
  ASSERT_TRUE(setup.ok());
  auto table = (*db)->CreateTable(*setup, "t", 64, 512);
  ASSERT_TRUE(table.ok());
  ASSERT_OK((*db)->Commit(*setup));
  std::string rec(64, 'y');
  for (int i = 0; i < 50; ++i) {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*db)->Insert(*txn, *table, rec).ok());
    ASSERT_OK((*db)->Commit(*txn));
  }
  AttributionTable table_out =
      ComputeAttribution((*db)->metrics()->tracer()->Snapshot());
  ASSERT_GE(table_out.traces, 50u);
  ASSERT_FALSE(table_out.rows.empty());
  double p50_sum = 0.0, p99_sum = 0.0;
  for (const StageShare& row : table_out.rows) {
    p50_sum += row.p50_share;
    p99_sum += row.p99_share;
  }
  // Self times partition each trace's end-to-end time by construction.
  EXPECT_NEAR(p50_sum, 1.0, 0.01);
  EXPECT_NEAR(p99_sum, 1.0, 0.01);
  // And the machine-readable form carries the same shares.
  std::string json = AttributionToJson(table_out);
  Result<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->U64("traces"), table_out.traces);
  EXPECT_NE(doc->Find("stages"), nullptr);
}

// -- Watchdog --------------------------------------------------------------

TEST(WatchdogTest, FiresOnStallFilesDossierAndRearms) {
  TempDir dir;
  MetricsRegistry metrics;
  ForensicsRecorder forensics(dir.path(), nullptr, &metrics);
  Watchdog wd(&metrics, &forensics, [] { return 42u; });

  uint64_t progress = 7;
  bool active = true;
  WatchdogProbe probe;
  probe.name = "synthetic";
  probe.active = [&active] { return active; };
  probe.progress = [&progress] { return progress; };
  probe.stall_ns = 1;  // Any two polls apart count as a stall.
  wd.AddProbe(std::move(probe));

  wd.PollOnce();  // Baseline observation.
  EXPECT_EQ(wd.stalls(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  wd.PollOnce();  // Same progress, past the threshold: stall.
  EXPECT_EQ(wd.stalls(), 1u);
  std::string reason = wd.DegradedReason();
  EXPECT_NE(reason.find("synthetic"), std::string::npos) << reason;

  // One dossier, not one per poll.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  wd.PollOnce();
  EXPECT_EQ(wd.stalls(), 1u);

  size_t skipped = 0;
  auto incidents = LoadIncidentFile(dir.path() + "/incidents.jsonl", &skipped);
  ASSERT_TRUE(incidents.ok());
  ASSERT_EQ(incidents->size(), 1u);
  const JsonValue& inc = (*incidents)[0];
  EXPECT_EQ(inc.Str("source"),
            IncidentSourceName(IncidentSource::kStallWatchdog));
  EXPECT_EQ(inc.U64("lsn"), 42u);
  EXPECT_NE(inc.Str("detail").find("synthetic"), std::string::npos);

  // Progress re-arms: a later genuine stall files a second dossier.
  progress = 8;
  wd.PollOnce();
  EXPECT_TRUE(wd.DegradedReason().empty());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  wd.PollOnce();
  EXPECT_EQ(wd.stalls(), 2u);

  // Inactivity also re-arms and clears degradation.
  active = false;
  wd.PollOnce();
  EXPECT_TRUE(wd.DegradedReason().empty());
}

TEST(WatchdogTest, QuietWhileProgressAdvances) {
  MetricsRegistry metrics;
  Watchdog wd(&metrics, nullptr);
  uint64_t ticks = 0;
  WatchdogProbe probe;
  probe.name = "healthy";
  probe.active = [] { return true; };
  probe.progress = [&ticks] { return ++ticks; };  // Always advancing.
  probe.stall_ns = 1;
  wd.AddProbe(std::move(probe));
  for (int i = 0; i < 20; ++i) {
    wd.PollOnce();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(wd.stalls(), 0u);
  EXPECT_TRUE(wd.DegradedReason().empty());
}

TEST(WatchdogTest, DatabaseWiredWatchdogSeesAStuckTransaction) {
  TempDir dir;
  DatabaseOptions opts = TracedOptions(dir.path());
  opts.watchdog.enabled = true;
  opts.watchdog.poll_interval_ms = 5;
  opts.watchdog.txn_age_limit_ms = 20;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_NE((*db)->watchdog(), nullptr);

  auto txn = (*db)->Begin();  // Left open: the oldest-txn probe stalls.
  ASSERT_TRUE(txn.ok());
  for (int i = 0; i < 400 && (*db)->watchdog()->stalls() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE((*db)->watchdog()->stalls(), 1u);
  EXPECT_NE((*db)->watchdog()->DegradedReason().find("txn.oldest"),
            std::string::npos);

  // Retiring the transaction restores health.
  ASSERT_OK((*db)->Commit(*txn));
  for (int i = 0; i < 400 && !(*db)->watchdog()->DegradedReason().empty();
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE((*db)->watchdog()->DegradedReason().empty());
  // The stall left a dossier behind.
  size_t skipped = 0;
  auto incidents = LoadIncidentFile(dir.path() + "/incidents.jsonl", &skipped);
  ASSERT_TRUE(incidents.ok());
  bool found = false;
  for (const JsonValue& inc : *incidents) {
    if (inc.Str("source") ==
        IncidentSourceName(IncidentSource::kStallWatchdog)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cwdb
