// Tests of the prior-state corruption recovery model (§4.1): rewinding the
// database to a transaction-consistent point, reporting every discarded
// transaction, and the interplay with checkpoints (a checkpoint newer than
// the rewind point makes the rewind impossible without an archive).

#include <gtest/gtest.h>

#include "ckpt/archive.h"
#include "core/database.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

class PriorStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 64, 64);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    auto rid = db_->Insert(*txn, table_, std::string(64, 'v'));
    ASSERT_TRUE(rid.ok());
    slot_ = rid->slot;
    ASSERT_OK(db_->Commit(*txn));
  }

  TxnId CommitUpdate(const std::string& value) {
    auto txn = db_->Begin();
    TxnId id = (*txn)->id();
    EXPECT_OK(db_->Update(*txn, table_, slot_, 0, value));
    EXPECT_OK(db_->Commit(*txn));
    return id;
  }

  std::string ReadCommitted() {
    auto txn = db_->Begin();
    std::string got;
    EXPECT_OK(db_->Read(*txn, table_, slot_, &got));
    EXPECT_OK(db_->Commit(*txn));
    return got;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
  uint32_t slot_ = 0;
};

TEST_F(PriorStateTest, RewindsToMarkedPoint) {
  CommitUpdate("GOODDATA");
  Lsn point = db_->CurrentLsn();
  TxnId bad1 = CommitUpdate("BADWRITE");
  TxnId bad2 = CommitUpdate("WORSEONE");
  // Raw peek (a transactional read would itself commit after `point` and
  // be — correctly — discarded and reported too).
  ASSERT_EQ(std::string(reinterpret_cast<const char*>(db_->image()->At(
                            db_->image()->RecordOff(table_, slot_))),
                        8),
            "WORSEONE");

  ASSERT_OK(db_->RecoverToPriorState(point));
  EXPECT_EQ(ReadCommitted().substr(0, 8), "GOODDATA");
  const auto& deleted = db_->last_recovery_report().deleted_txns;
  EXPECT_EQ(deleted.size(), 2u);
  EXPECT_NE(std::find(deleted.begin(), deleted.end(), bad1), deleted.end());
  EXPECT_NE(std::find(deleted.begin(), deleted.end(), bad2), deleted.end());
}

TEST_F(PriorStateTest, StatePersistsAcrossLaterCrashes) {
  CommitUpdate("KEEPTHIS");
  Lsn point = db_->CurrentLsn();
  CommitUpdate("DROPTHIS");
  ASSERT_OK(db_->RecoverToPriorState(point));

  // The rewound state must be stable: normal crash recovery afterwards
  // must not resurrect the discarded transactions (the final checkpoint
  // made the prior state the new truth).
  ASSERT_OK(db_->CrashAndRecover());
  EXPECT_EQ(ReadCommitted().substr(0, 8), "KEEPTHIS");
  EXPECT_TRUE(db_->last_recovery_report().deleted_txns.empty());

  // And the database is fully usable afterwards.
  CommitUpdate("NEWWRITE");
  ASSERT_OK(db_->CrashAndRecover());
  EXPECT_EQ(ReadCommitted().substr(0, 8), "NEWWRITE");
}

TEST_F(PriorStateTest, RefusedWhenCheckpointPostdatesPoint) {
  Lsn point = db_->CurrentLsn();
  CommitUpdate("AFTERPOINT");
  ASSERT_OK(db_->Checkpoint());  // CK_end is now beyond `point`.
  Status s = db_->RecoverToPriorState(point);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  // Nothing was harmed by the refusal... but the refusal happens after the
  // volatile state was dropped, so the database recovered to latest-state.
  ASSERT_OK(db_->CrashAndRecover());
  EXPECT_EQ(ReadCommitted().substr(0, 10), "AFTERPOINT");
}

TEST_F(PriorStateTest, OpenTransactionAtPointIsRolledBack) {
  CommitUpdate("COMMITTED");
  auto open_txn = db_->Begin();
  ASSERT_OK(db_->Update(*open_txn, table_, slot_, 8, "inflight"));
  ASSERT_OK(db_->log()->Flush());
  Lsn point = db_->CurrentLsn();

  ASSERT_OK(db_->RecoverToPriorState(point));
  std::string got = ReadCommitted();
  EXPECT_EQ(got.substr(0, 9), "COMMITTED");
  EXPECT_EQ(got.substr(9, 8), std::string(8, 'v'));  // In-flight undone.
  EXPECT_EQ(db_->last_recovery_report().rolled_back_txns.size(), 1u);
}

TEST_F(PriorStateTest, ArchiveEnablesRewindPastLiveCheckpoints) {
  CommitUpdate("ANCIENT1");
  TempDir archive_dir;
  auto archive_point = db_->Archive(archive_dir.path() + "/arch");
  ASSERT_TRUE(archive_point.ok()) << archive_point.status().ToString();
  Lsn point = db_->CurrentLsn();
  ASSERT_GE(point, *archive_point);

  // Post-archive history, including checkpoints that overwrite both live
  // ping-pong images — the naive rewind is now impossible.
  CommitUpdate("MODERN01");
  ASSERT_OK(db_->Checkpoint());
  CommitUpdate("MODERN02");
  ASSERT_OK(db_->Checkpoint());
  EXPECT_FALSE(db_->RecoverToPriorState(point).ok());

  // Restore the archive into the (closed) directory, then open with the
  // rewind point: recovery replays from the archived CK_end up to `point`
  // only (an open without the limit would immediately re-checkpoint the
  // latest state past the point again).
  db_.reset();
  DbFiles files(dir_.path());
  ASSERT_OK(RestoreArchive(archive_dir.path() + "/arch", files));
  DatabaseOptions opts =
      SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword);
  opts.recover_to_lsn = point;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  db_ = std::move(db).value();
  EXPECT_FALSE(db_->last_recovery_report().deleted_txns.empty());
  EXPECT_EQ(ReadCommitted().substr(0, 8), "ANCIENT1");

  // Forward progress still works after the rewind.
  CommitUpdate("ONWARD!!");
  ASSERT_OK(db_->CrashAndRecover());
  EXPECT_EQ(ReadCommitted().substr(0, 8), "ONWARD!!");
}

TEST_F(PriorStateTest, RestoreArchiveRefusesMissingArchive) {
  TempDir empty;
  DbFiles files(dir_.path());
  EXPECT_TRUE(
      RestoreArchive(empty.path() + "/nothing", files).IsNotFound());
}

TEST_F(PriorStateTest, EveryMarkRewindsExactly) {
  // Property: rewinding to any recorded point reproduces exactly the value
  // the record had at that point and reports exactly the transactions
  // committed after it. One rewind per database generation: the rewind's
  // own checkpoint is stamped at the physical log end, so a second, older
  // rewind correctly requires an archive (covered by the archive test).
  const std::vector<std::string> values = {"VAL-AAAA", "VAL-BBBB",
                                           "VAL-CCCC", "VAL-DDDD"};
  for (size_t target = 0; target < values.size(); ++target) {
    TempDir fresh;
    auto db = Database::Open(
        SmallDbOptions(fresh.path(), ProtectionScheme::kDataCodeword));
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->Begin();
    auto t = (*db)->CreateTable(*txn, "t", 64, 8);
    ASSERT_TRUE(t.ok());
    auto rid = (*db)->Insert(*txn, *t, std::string(64, 'v'));
    ASSERT_TRUE(rid.ok());
    ASSERT_OK((*db)->Commit(*txn));

    Lsn mark_lsn = 0;
    std::string mark_value;
    std::string current(64, 'v');
    for (size_t i = 0; i < values.size(); ++i) {
      if (i == target) {
        ASSERT_OK((*db)->log()->Flush());
        mark_lsn = (*db)->CurrentLsn();
        mark_value = current;
      }
      txn = (*db)->Begin();
      ASSERT_OK((*db)->Update(*txn, *t, rid->slot, 0, values[i]));
      ASSERT_OK((*db)->Commit(*txn));
      current = values[i] + std::string(64 - values[i].size(), 'v');
    }

    ASSERT_OK((*db)->RecoverToPriorState(mark_lsn));
    std::string got(reinterpret_cast<const char*>((*db)->image()->At(
                        (*db)->image()->RecordOff(*t, rid->slot))),
                    64);
    EXPECT_EQ(got, mark_value) << "target " << target;
    EXPECT_EQ((*db)->last_recovery_report().deleted_txns.size(),
              values.size() - target)
        << "target " << target;
  }
}

TEST_F(PriorStateTest, RewindToCurrentIsNoOp) {
  CommitUpdate("UNCHANGED");
  ASSERT_OK(db_->log()->Flush());
  Lsn point = db_->CurrentLsn();
  ASSERT_OK(db_->RecoverToPriorState(point));
  EXPECT_EQ(ReadCommitted().substr(0, 9), "UNCHANGED");
  EXPECT_TRUE(db_->last_recovery_report().deleted_txns.empty());
}

}  // namespace
}  // namespace cwdb
