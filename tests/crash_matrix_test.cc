// Crash-point torture matrix: for every durability boundary compiled into
// the engine, fork a child that runs a scripted transactional workload,
// kill it (or fail its I/O) at the armed point, then reopen, recover, and
// assert the durability invariants (see faultinject/crash_harness.h).
// Also the in-process regression tests for the dirty-bit restore bug and
// for torn anchor / torn metadata recovery.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/crashpoint.h"
#include "common/file_util.h"
#include "common/random.h"
#include "faultinject/crash_harness.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

using crashharness::CaseSpec;
using crashharness::CaseResult;
using crashharness::RunCase;
using crashpoint::Mode;

/// Runs one case in its own subdirectory of `dir` and asserts it passed.
void ExpectCasePasses(const TempDir& dir, const CaseSpec& spec,
                      const std::string& tag) {
  Result<CaseResult> r = RunCase(dir.path() + "/" + tag, spec);
  ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
  SCOPED_TRACE(r->detail);
}

CaseSpec MakeSpec(const std::string& point, Mode mode) {
  CaseSpec spec;
  spec.point = point;
  spec.mode = mode;
  // The image-sizing point is only reached while a fresh database is being
  // formatted, so it must be armed before Database::Open.
  spec.arm_before_open = point == "ckpt.image.setsize";
  return spec;
}

/// The full named sweep for one mode: every compiled-in crash point.
void SweepAllPoints(Mode mode, const char* mode_tag) {
  for (const std::string& point : crashpoint::AllPoints()) {
    TempDir dir;
    ExpectCasePasses(dir, MakeSpec(point, mode),
                     point + "." + mode_tag);
  }
}

TEST(CrashMatrix, NamedSweepAbort) { SweepAllPoints(Mode::kAbort, "abort"); }

TEST(CrashMatrix, NamedSweepEio) { SweepAllPoints(Mode::kEio, "eio"); }

TEST(CrashMatrix, NamedSweepTornWrite) {
  SweepAllPoints(Mode::kTornWrite, "torn");
}

/// Randomized cases: random point, mode and countdown, seeded (override
/// with CWDB_CRASHTEST_SEED to reproduce a CI failure locally).
TEST(CrashMatrix, RandomizedCases) {
  const char* env = std::getenv("CWDB_CRASHTEST_SEED");
  uint64_t seed = env != nullptr ? std::strtoull(env, nullptr, 10) : 0xC0DEu;
  Random rng(seed);
  const std::vector<std::string>& points = crashpoint::AllPoints();
  constexpr Mode kModes[] = {Mode::kAbort, Mode::kEio, Mode::kTornWrite};
  for (int i = 0; i < 8; ++i) {
    CaseSpec spec;
    do {
      spec.point = points[rng.Uniform(static_cast<uint32_t>(points.size()))];
      // The sizing point is hit exactly twice, during the fresh format, so
      // a random countdown would often never expire; leave it to the sweep.
    } while (spec.point == "ckpt.image.setsize");
    spec.mode = kModes[rng.Uniform(3)];
    spec.countdown = 1 + rng.Uniform(2);  // Every other point is hit >= 2x.
    TempDir dir;
    ExpectCasePasses(dir, spec,
                     "rand" + std::to_string(i) + "." + spec.point);
    ASSERT_FALSE(::testing::Test::HasFatalFailure())
        << "seed " << seed << ", iteration " << i;
  }
}

/// A bit flip inside a WAL batch is detected by the frame CRC at the next
/// open and treated as a torn tail — acked commits in or after the damaged
/// frame may legitimately be lost, but atomicity and a clean audit must
/// still hold (RunCase relaxes invariant 1 for kBitFlip).
TEST(CrashMatrix, WalBitFlipRecoversToCleanPrefix) {
  TempDir dir;
  ExpectCasePasses(dir, MakeSpec("wal.flush.pwrite", Mode::kBitFlip),
                   "wal.bitflip");
}

/// A bit flip in the checkpoint metadata is caught by the meta CRC; the
/// ping-pong partner (or a later rewrite) keeps the database recoverable.
TEST(CrashMatrix, MetaBitFlipIsDetected) {
  TempDir dir;
  ExpectCasePasses(dir, MakeSpec("ckpt.meta.tmp_write", Mode::kBitFlip),
                   "meta.bitflip");
}

/// A bit flip in a checkpoint *page* write was the documented undetected
/// fault (DESIGN §8): the certification audit sees the in-memory image and
/// the page write carried no disk checksum, so the flipped byte silently
/// became durable. The parity sidecar closes the hole: at the next load
/// the flipped region fails sidecar verification and is reconstructed in
/// place, so every harness invariant — byte-exact records, atomicity, and
/// the clean full audit — must now hold wherever in the checkpoint stream
/// the flip lands. (A flip that hits the image header still surfaces as a
/// clean Corruption diagnosis at reopen, which the harness accepts for
/// bit-flip cases.)
TEST(CrashMatrix, CkptPageBitFlipSweepIsRepairedAtLoad) {
  for (uint32_t countdown : {1u, 2u, 3u, 4u, 5u, 8u, 13u}) {
    TempDir dir;
    CaseSpec spec = MakeSpec("ckpt.page.pwrite", Mode::kBitFlip);
    spec.countdown = countdown;
    ExpectCasePasses(dir, spec,
                     "ckpt.page.bitflip.cd" + std::to_string(countdown));
    ASSERT_FALSE(::testing::Test::HasFatalFailure())
        << "countdown " << countdown;
  }
}

// ---------------------------------------------------------------------------
// Regression: a checkpoint that fails after clearing its image's dirty bits
// must restore them. Before the fix, the failed attempt left the bits
// cleared; the next checkpoint to the same image then wrote nothing, yet
// toggled the anchor to an image file that was never populated — recovery
// from it failed (or, worse, silently loaded stale pages).
// ---------------------------------------------------------------------------

TEST(CheckpointFailure, DirtyBitsSurviveFailedCheckpoint) {
  TempDir dir;
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword));
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  auto t = (*db)->CreateTable(*txn, "t", 64, 256);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(64, 'a' + i % 26)).ok());
  }
  ASSERT_OK((*db)->Commit(*txn));

  // Checkpoint #1 targets the inactive image (B) and dies on its first
  // page write: nothing of the snapshot reaches the file.
  crashpoint::Arm("ckpt.page.pwrite", {Mode::kEio, 1, 0});
  Status failed = (*db)->Checkpoint();
  ASSERT_FALSE(failed.ok());
  crashpoint::DisarmAll();

  // Checkpoint #2 targets B again (the anchor never moved). With the bug,
  // the dirty set was empty, so B stayed all-zero yet became the anchor;
  // recovery from it then failed header validation. With the fix the
  // captured pages were re-marked dirty and B is written in full.
  ASSERT_OK((*db)->Checkpoint());
  ASSERT_OK((*db)->CrashAndRecover());

  // Byte-for-byte: the recovered records must be exactly the committed
  // ones — 50 runs of a single letter, two each of 'a'..'x', one each of
  // 'y' and 'z'.
  auto found = (*db)->FindTable("t");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*db)->CountRecords(*found), 50u);
  int tally[26] = {};
  auto rd = (*db)->Begin();
  ASSERT_TRUE(rd.ok());
  ASSERT_OK((*db)->Scan(*rd, *found, [&](uint32_t, Slice rec) -> Status {
    if (rec.size() != 64) return Status::Internal("bad record size");
    char c = rec[0];
    if (c < 'a' || c > 'z' || rec != Slice(std::string(64, c))) {
      return Status::Internal("recovered record bytes are wrong");
    }
    ++tally[c - 'a'];
    return Status::OK();
  }));
  ASSERT_OK((*db)->Abort(*rd));
  for (int i = 0; i < 26; ++i) {
    EXPECT_EQ(tally[i], i < 50 % 26 ? 2 : 1) << "letter " << char('a' + i);
  }
  auto audit = (*db)->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

// ---------------------------------------------------------------------------
// Torn-anchor / torn-metadata recovery: damage to the small control files
// must surface as a clean Corruption diagnosis (or be survived outright via
// the ping-pong partner), never as a crash or a garbled reopen.
// ---------------------------------------------------------------------------

class TornControlFileTest : public ::testing::Test {
 protected:
  /// Builds a database with one committed table and closes it cleanly.
  void BuildDb() {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto txn = (*db)->Begin();
    auto t = (*db)->CreateTable(*txn, "t", 32, 64);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(32, 'x')).ok());
    ASSERT_OK((*db)->Commit(*txn));
    ASSERT_OK((*db)->Close());
    files_ = std::make_unique<DbFiles>(dir_.path());
  }

  Status Reopen() {
    return Database::Open(
               SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword))
        .status();
  }

  std::string ActiveAnchor() {
    std::string a;
    EXPECT_OK(ReadFileToString(files_->Anchor(), &a));
    return a;
  }

  TempDir dir_;
  std::unique_ptr<DbFiles> files_;
};

TEST_F(TornControlFileTest, EmptyAnchorIsCleanCorruption) {
  BuildDb();
  ASSERT_OK(WriteFileAtomic(files_->Anchor(), ""));
  Status s = Reopen();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(TornControlFileTest, GarbageAnchorIsCleanCorruption) {
  BuildDb();
  ASSERT_OK(WriteFileAtomic(files_->Anchor(), "Z\x7f"));
  Status s = Reopen();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(TornControlFileTest, TruncatedActiveMetaIsCleanCorruption) {
  BuildDb();
  std::string anchor = ActiveAnchor();
  std::string meta_path = files_->CkptMeta(anchor == "A" ? 0 : 1);
  std::string meta;
  ASSERT_OK(ReadFileToString(meta_path, &meta));
  ASSERT_GT(meta.size(), 8u);
  ASSERT_OK(WriteFileAtomic(meta_path, meta.substr(0, meta.size() / 2)));
  Status s = Reopen();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(TornControlFileTest, BitFlippedActiveMetaIsCleanCorruption) {
  BuildDb();
  std::string anchor = ActiveAnchor();
  std::string meta_path = files_->CkptMeta(anchor == "A" ? 0 : 1);
  std::string meta;
  ASSERT_OK(ReadFileToString(meta_path, &meta));
  meta[meta.size() / 3] ^= 0x10;
  ASSERT_OK(WriteFileAtomic(meta_path, meta));
  Status s = Reopen();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(TornControlFileTest, CorruptInactiveMetaIsHarmless) {
  BuildDb();
  std::string anchor = ActiveAnchor();
  std::string meta_path = files_->CkptMeta(anchor == "A" ? 1 : 0);
  // The inactive meta may not exist yet (only one checkpoint ever ran);
  // either way, garbage there must not affect recovery from the anchor.
  ASSERT_OK(WriteFileAtomic(meta_path, "garbage garbage garbage"));
  auto db = Database::Open(
      SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = (*db)->FindTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*db)->CountRecords(*t), 1u);
}

}  // namespace
}  // namespace cwdb
