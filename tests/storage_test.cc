// Unit tests for the storage layer: arena mapping & protection, image
// layout/formatting, bitmap slot allocation, address math, and dirty-page
// tracking for the ping-pong checkpointer.

#include <gtest/gtest.h>

#include <csetjmp>
#include <csignal>
#include <cstring>

#include "storage/arena.h"
#include "storage/db_image.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

TEST(Arena, CreateZeroFilled) {
  auto arena = Arena::Create(1 << 20);
  ASSERT_TRUE(arena.ok());
  EXPECT_GE((*arena)->size(), 1u << 20);
  for (size_t i = 0; i < 4096; i += 512) {
    EXPECT_EQ((*arena)->base()[i], 0);
  }
}

TEST(Arena, RejectsZeroSize) { EXPECT_FALSE(Arena::Create(0).ok()); }

TEST(Arena, RoundsToOsPage) {
  auto arena = Arena::Create(100);
  ASSERT_TRUE(arena.ok());
  EXPECT_EQ((*arena)->size() % Arena::OsPageSize(), 0u);
}

namespace trap {
sigjmp_buf jmp;
void Handler(int) { siglongjmp(jmp, 1); }
}  // namespace trap

TEST(Arena, ProtectMakesPagesReadOnly) {
  auto arena = Arena::Create(1 << 16);
  ASSERT_TRUE(arena.ok());
  (*arena)->base()[0] = 1;  // Writable initially.
  ASSERT_OK((*arena)->Protect(0, (*arena)->size(), false));

  struct sigaction sa, old;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = trap::Handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, &old);
  static volatile bool trapped;  // volatile: survives siglongjmp.
  trapped = false;
  if (sigsetjmp(trap::jmp, 1) == 0) {
    (*arena)->base()[0] = 2;
  } else {
    trapped = true;
  }
  ::sigaction(SIGSEGV, &old, nullptr);
  EXPECT_TRUE(trapped);
  EXPECT_EQ((*arena)->base()[0], 1);

  ASSERT_OK((*arena)->Protect(0, (*arena)->size(), true));
  (*arena)->base()[0] = 3;  // Writable again.
  EXPECT_EQ((*arena)->base()[0], 3);
}

TEST(DbImage, CreateFormatsHeader) {
  auto image = DbImage::Create(1 << 20, 4096);
  ASSERT_TRUE(image.ok());
  const DbHeaderRaw* h = (*image)->header();
  EXPECT_EQ(h->magic, kDbMagic);
  EXPECT_EQ(h->version, kDbVersion);
  EXPECT_EQ(h->page_size, 4096u);
  EXPECT_EQ(h->arena_size, 1u << 20);
  EXPECT_EQ(h->alloc_cursor % 4096, 0u);
  EXPECT_GE(h->alloc_cursor, kTableDirOff + kTableDirBytes);
  ASSERT_OK((*image)->ValidateHeader());
}

TEST(DbImage, RejectsBadGeometry) {
  EXPECT_FALSE(DbImage::Create(1 << 20, 1000).ok());   // Not a power of 2.
  EXPECT_FALSE(DbImage::Create(1 << 20, 1024).ok());   // < OS page.
  EXPECT_FALSE(DbImage::Create(4096 * 3 + 1, 4096).ok());  // Unaligned.
  EXPECT_FALSE(DbImage::Create(8192, 4096).ok());      // Too small.
}

TEST(DbImage, ValidateHeaderDetectsDamage) {
  auto image = DbImage::Create(1 << 20, 4096);
  ASSERT_TRUE(image.ok());
  std::memset((*image)->At(0), 0xFF, 8);
  EXPECT_TRUE((*image)->ValidateHeader().IsCorruption());
}

TEST(DbImage, InBounds) {
  auto image = DbImage::Create(1 << 20, 4096);
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE((*image)->InBounds(0, 1));
  EXPECT_TRUE((*image)->InBounds((1 << 20) - 1, 1));
  EXPECT_FALSE((*image)->InBounds(1 << 20, 1));
  EXPECT_FALSE((*image)->InBounds((1 << 20) - 1, 2));
  // Overflow-safe.
  EXPECT_FALSE((*image)->InBounds(~0ull, 16));
}

TEST(DbImage, FindTableOnFreshImage) {
  auto image = DbImage::Create(1 << 20, 4096);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ((*image)->FindTable("anything"), kMaxTables);
}

class BitmapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto image = DbImage::Create(1 << 20, 4096);
    ASSERT_TRUE(image.ok());
    image_ = std::move(image).value();
    // Hand-craft a table meta (tests bypass the transactional path).
    TableMetaRaw m{};
    m.in_use = 1;
    m.record_size = 100;
    m.capacity = 200;
    m.bitmap_off = image_->header()->alloc_cursor;
    m.data_off = m.bitmap_off + 4096;
    std::strncpy(m.name, "bt", sizeof(m.name) - 1);
    std::memcpy(image_->At(TableMetaOff(0)), &m, sizeof(m));
  }

  void SetBit(uint32_t slot, bool on) {
    const TableMetaRaw* m = image_->table_meta(0);
    uint64_t word;
    std::memcpy(&word, image_->At(BitmapWordOff(m->bitmap_off, slot)), 8);
    if (on) {
      word |= BitmapBitMask(slot);
    } else {
      word &= ~BitmapBitMask(slot);
    }
    std::memcpy(image_->At(BitmapWordOff(m->bitmap_off, slot)), &word, 8);
  }

  std::unique_ptr<DbImage> image_;
};

TEST_F(BitmapTest, SlotAllocatedTracksBits) {
  EXPECT_FALSE(image_->SlotAllocated(0, 5));
  SetBit(5, true);
  EXPECT_TRUE(image_->SlotAllocated(0, 5));
  SetBit(5, false);
  EXPECT_FALSE(image_->SlotAllocated(0, 5));
}

TEST_F(BitmapTest, FindFreeSlotSkipsAllocated) {
  SetBit(0, true);
  SetBit(1, true);
  EXPECT_EQ(image_->FindFreeSlot(0, 0), 2u);
}

TEST_F(BitmapTest, FindFreeSlotWrapsFromHint) {
  SetBit(150, true);
  EXPECT_EQ(image_->FindFreeSlot(0, 150), 151u);
  // Hint beyond capacity wraps to 0.
  EXPECT_EQ(image_->FindFreeSlot(0, 5000), 0u);
}

TEST_F(BitmapTest, FindFreeSlotFullTable) {
  for (uint32_t s = 0; s < 200; ++s) SetBit(s, true);
  EXPECT_EQ(image_->FindFreeSlot(0, 0), kInvalidSlot);
  // Bits beyond capacity in the last word must not be offered.
  SetBit(199, false);
  EXPECT_EQ(image_->FindFreeSlot(0, 0), 199u);
}

TEST(DirtyTracking, MarkAndClearPerImage) {
  auto image = DbImage::Create(1 << 20, 4096);
  ASSERT_TRUE(image.ok());
  (*image)->ClearDirty(0);
  (*image)->ClearDirty(1);
  (*image)->MarkDirty(4096 * 3 + 10, 4096);  // Spans pages 3 and 4.
  EXPECT_EQ((*image)->DirtyPages(0), (std::vector<uint64_t>{3, 4}));
  EXPECT_EQ((*image)->DirtyPages(1), (std::vector<uint64_t>{3, 4}));
  (*image)->ClearDirty(0);
  EXPECT_TRUE((*image)->DirtyPages(0).empty());
  EXPECT_EQ((*image)->DirtyPages(1).size(), 2u);  // Independent sets.
}

TEST(DirtyTracking, RecordOffMath) {
  auto image = DbImage::Create(1 << 20, 4096);
  ASSERT_TRUE(image.ok());
  TableMetaRaw m{};
  m.in_use = 1;
  m.record_size = 100;
  m.capacity = 10;
  m.data_off = 0x10000;
  std::memcpy((*image)->At(TableMetaOff(2)), &m, sizeof(m));
  EXPECT_EQ((*image)->RecordOff(2, 0), 0x10000u);
  EXPECT_EQ((*image)->RecordOff(2, 7), 0x10000u + 700);
}

TEST(Layout, BitmapMath) {
  EXPECT_EQ(BitmapBytes(1), 8u);
  EXPECT_EQ(BitmapBytes(64), 8u);
  EXPECT_EQ(BitmapBytes(65), 16u);
  EXPECT_EQ(BitmapWordOff(1000, 0), 1000u);
  EXPECT_EQ(BitmapWordOff(1000, 63), 1000u);
  EXPECT_EQ(BitmapWordOff(1000, 64), 1008u);
  EXPECT_EQ(BitmapBitMask(0), 1ull);
  EXPECT_EQ(BitmapBitMask(65), 2ull);
}

}  // namespace
}  // namespace cwdb
