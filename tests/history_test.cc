// Observability-layer tests: the metrics time-series ring (retention,
// rates, windowed quantiles, delta-encoded persistence and its torn-file
// tolerance), the integrity coverage map (scrub ages, auditor publishing),
// and the SLO engine end to end — burn -> kSloBurn dossier -> /healthz
// 503 -> recovery.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "common/crashpoint.h"
#include "common/file_util.h"
#include "core/auditor.h"
#include "faultinject/fault_injector.h"
#include "obs/history.h"
#include "obs/slo.h"
#include "tests/test_util.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

/// Blocking one-shot HTTP GET against 127.0.0.1:port (full response).
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t done = 0;
  while (done < req.size()) {
    ssize_t n = ::write(fd, req.data() + done, req.size() - done);
    if (n <= 0) break;
    done += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

constexpr uint64_t kHourNs = 3600ull * 1'000'000'000;

HistoryOptions ManualSampling(size_t retention = 512) {
  HistoryOptions o;
  o.interval_ms = 0;  // Tests drive SampleNow() themselves.
  o.retention = retention;
  return o;
}

TEST(MetricsHistoryRing, RetentionEvictsOldest) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  MetricsHistory hist(&reg, ManualSampling(4));
  for (int i = 0; i < 7; ++i) {
    c->Add();
    hist.SampleNow();
  }
  EXPECT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist.samples_taken(), 7u);
  auto pts = hist.Series("c", kHourNs, hist.LatestMono());
  ASSERT_EQ(pts.size(), 4u);
  // Samples 1..3 were evicted; the survivors hold the counter at 4..7.
  EXPECT_EQ(pts.front().value, 4.0);
  EXPECT_EQ(pts.back().value, 7.0);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].mono_ns, pts[i - 1].mono_ns);
  }
}

TEST(MetricsHistoryRing, RatesWindowedQuantilesAndLateMetrics) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  Histogram* h = reg.histogram("h");
  MetricsHistory hist(&reg, ManualSampling());
  hist.SampleNow();
  c->Add(100);
  h->Record(1000);
  h->Record(3000);
  hist.SampleNow();
  c->Add(50);
  h->Record(800000);
  hist.SampleNow();

  uint64_t now = hist.LatestMono();
  EXPECT_EQ(hist.TypeOf("c"), MetricsHistory::MetricType::kCounter);
  EXPECT_EQ(hist.TypeOf("h"), MetricsHistory::MetricType::kHistogram);
  EXPECT_EQ(hist.TypeOf("nope"), MetricsHistory::MetricType::kNone);

  auto pts = hist.Series("c", kHourNs, now);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].value, 0.0);
  EXPECT_EQ(pts[1].value, 100.0);
  EXPECT_EQ(pts[2].value, 150.0);
  EXPECT_GT(hist.Rate("c", kHourNs, now), 0.0);

  MetricsHistory::WindowedHist wh;
  ASSERT_TRUE(hist.Windowed("h", kHourNs, now, &wh));
  EXPECT_EQ(wh.count, 3u);
  EXPECT_EQ(wh.sum, 804000u);
  // Log2 buckets: 1000 -> 1024, 3000 -> 4096, 800000 -> 2^20.
  EXPECT_EQ(wh.Quantile(0.50), 4096u);
  EXPECT_EQ(wh.Quantile(0.99), uint64_t{1} << 20);
  EXPECT_EQ(wh.CountAbove(4096), 1u);
  // 512 shares 1000's log2 bucket [512, 1024), so "strictly above" only
  // counts the two larger samples — exact to the bucket resolution.
  EXPECT_EQ(wh.CountAbove(512), 2u);
  EXPECT_EQ(wh.CountAbove(511), 3u);
  EXPECT_EQ(wh.CountAbove(uint64_t{1} << 20), 0u);

  double latest = 0;
  ASSERT_TRUE(hist.Latest("c", &latest));
  EXPECT_EQ(latest, 150.0);

  // A metric registered after sampling began backfills as zero.
  reg.counter("late")->Add(5);
  hist.SampleNow();
  pts = hist.Series("late", kHourNs, hist.LatestMono());
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts.front().value, 0.0);
  EXPECT_EQ(pts.back().value, 5.0);
}

TEST(MetricsHistoryRing, QueryJsonShapesAndErrors) {
  MetricsRegistry reg;
  Counter* c = reg.counter("txn.commits");
  Histogram* h = reg.histogram("txn.commit_latency_ns");
  reg.gauge("txn.active")->Set(-3);
  MetricsHistory hist(&reg, ManualSampling());
  hist.SampleNow();
  c->Add(10);
  h->Record(50000);
  hist.SampleNow();

  auto r = hist.QueryJson("metric=txn.commits&window=60s");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(r->find("\"rate_per_s\""), std::string::npos);
  EXPECT_NE(r->find("\"points\""), std::string::npos);

  r = hist.QueryJson("metric=txn.commit_latency_ns&window=5m");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(r->find("\"windowed\""), std::string::npos);
  EXPECT_NE(r->find("\"p99\""), std::string::npos);

  r = hist.QueryJson("metric=txn.active");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(r->find("\"value\": -3"), std::string::npos);

  EXPECT_FALSE(hist.QueryJson("").ok());
  EXPECT_FALSE(hist.QueryJson("window=60s").ok());
  EXPECT_FALSE(hist.QueryJson("metric=txn.commits&window=bogus").ok());
  EXPECT_FALSE(hist.QueryJson("metric=no.such.metric").ok());
}

TEST(MetricsHistoryPersist, SaveLoadRoundTrip) {
  TempDir dir;
  const std::string path = dir.path() + "/metrics_history.bin";
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  Gauge* g = reg.gauge("g");
  Histogram* h = reg.histogram("h");
  MetricsHistory hist(&reg, ManualSampling());
  for (int i = 1; i <= 5; ++i) {
    c->Add(static_cast<uint64_t>(i) * 7);
    g->Set(100 - 40 * i);  // Goes negative: signed deltas round-trip.
    h->Record(static_cast<uint64_t>(i) * 1000);
    hist.SampleNow();
  }
  ASSERT_OK(hist.SaveTo(path));

  MetricsHistory loaded(nullptr, ManualSampling());
  ASSERT_OK(loaded.LoadFrom(path));
  ASSERT_EQ(loaded.size(), 5u);
  EXPECT_EQ(loaded.LatestMono(), hist.LatestMono());

  uint64_t now = hist.LatestMono();
  for (const char* metric : {"c", "g"}) {
    auto a = hist.Series(metric, kHourNs, now);
    auto b = loaded.Series(metric, kHourNs, now);
    ASSERT_EQ(a.size(), b.size()) << metric;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].value, b[i].value) << metric << "[" << i << "]";
      EXPECT_EQ(a[i].mono_ns, b[i].mono_ns) << metric << "[" << i << "]";
      EXPECT_EQ(a[i].wall_ns, b[i].wall_ns) << metric << "[" << i << "]";
    }
  }
  MetricsHistory::WindowedHist wa, wb;
  ASSERT_TRUE(hist.Windowed("h", kHourNs, now, &wa));
  ASSERT_TRUE(loaded.Windowed("h", kHourNs, now, &wb));
  EXPECT_EQ(wa.count, wb.count);
  EXPECT_EQ(wa.sum, wb.sum);
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(wa.buckets[i], wb.buckets[i]) << "bucket " << i;
  }
}

TEST(MetricsHistoryPersist, ToleratesTruncationAndBitFlips) {
  TempDir dir;
  const std::string path = dir.path() + "/metrics_history.bin";
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  MetricsHistory hist(&reg, ManualSampling());
  for (int i = 0; i < 8; ++i) {
    c->Add(3);
    hist.SampleNow();
  }
  ASSERT_OK(hist.SaveTo(path));
  std::string full;
  ASSERT_OK(ReadFileToString(path, &full));
  ASSERT_GT(full.size(), 32u);

  // Every truncation length loads: the valid prefix wins, never an error.
  for (size_t len : {size_t{0}, size_t{4}, size_t{8}, size_t{12},
                     full.size() / 4, full.size() / 2, full.size() - 1}) {
    ASSERT_OK(WriteFileAtomic(path, full.substr(0, len)));
    MetricsHistory loaded(nullptr, ManualSampling());
    Status s = loaded.LoadFrom(path);
    ASSERT_TRUE(s.ok()) << "truncated to " << len << ": " << s.ToString();
    EXPECT_LE(loaded.size(), hist.size()) << "truncated to " << len;
  }

  // A flipped bit anywhere is caught by the record CRC (or the magic
  // check) and again yields the longest valid prefix.
  for (size_t off : {size_t{2}, size_t{9}, size_t{17}, full.size() / 2,
                     full.size() - 2}) {
    std::string bad = full;
    bad[off] = static_cast<char>(bad[off] ^ 0x10);
    ASSERT_OK(WriteFileAtomic(path, bad));
    MetricsHistory loaded(nullptr, ManualSampling());
    Status s = loaded.LoadFrom(path);
    ASSERT_TRUE(s.ok()) << "bit flip at " << off << ": " << s.ToString();
    EXPECT_LE(loaded.size(), hist.size()) << "bit flip at " << off;
  }

  // Garbage header: loads as empty, still not an error.
  ASSERT_OK(WriteFileAtomic(path, "this is not a history file"));
  MetricsHistory loaded(nullptr, ManualSampling());
  ASSERT_OK(loaded.LoadFrom(path));
  EXPECT_EQ(loaded.size(), 0u);

  // Missing file: also fine (a fresh database directory).
  ASSERT_OK(loaded.LoadFrom(dir.path() + "/does_not_exist.bin"));
}

TEST(MetricsHistoryPersist, SurvivesDatabaseReopen) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  uint64_t latest_before = 0;
  {
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    auto t = (*db)->CreateTable(*txn, "t", 32, 64);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(32, 'x')).ok());
    ASSERT_OK((*db)->Commit(*txn));
    for (int i = 0; i < 3; ++i) (*db)->history()->SampleNow();
    latest_before = (*db)->history()->LatestMono();
    ASSERT_OK((*db)->Close());  // Persists metrics_history.bin.
  }
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GE((*db)->history()->size(), 3u);
  EXPECT_GE((*db)->history()->LatestMono(), latest_before);
  // The reloaded ring answers queries, and new samples append to it.
  auto r = (*db)->history()->QueryJson("metric=txn.commits&window=1h");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->find("\"points\""), std::string::npos);
  size_t before = (*db)->history()->size();
  (*db)->history()->SampleNow();
  EXPECT_EQ((*db)->history()->size(), before + 1);
}

TEST(MetricsHistoryPersist, TornDumpCrashLeavesLoadablePrefix) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: build a history, then die mid-way through writing its tmp
    // file (a torn write at the obs.history.tmp_write crash point).
    auto db = Database::Open(opts);
    if (!db.ok()) ::_exit(10);
    auto txn = (*db)->Begin();
    if (!txn.ok()) ::_exit(11);
    auto t = (*db)->CreateTable(*txn, "t", 32, 64);
    if (!t.ok() || !(*db)->Insert(*txn, *t, std::string(32, 'x')).ok() ||
        !(*db)->Commit(*txn).ok()) {
      ::_exit(12);
    }
    for (int i = 0; i < 3; ++i) (*db)->history()->SampleNow();
    crashpoint::Spec spec;
    spec.mode = crashpoint::Mode::kTornWrite;
    spec.countdown = 1;
    spec.param = 150;  // Keep 150 bytes: magic + a partial record.
    crashpoint::Arm("obs.history.tmp_write", spec);
    (void)(*db)->DumpMetrics();
    ::_exit(13);  // The crash point should have killed us.
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), crashpoint::kCrashExitCode);

  // The atomic-write protocol itself never publishes the torn file — the
  // rename never happened. Simulate the power-loss case the loader must
  // also survive (data blocks lost under an already-visible name) by
  // promoting the torn tmp file to the real name.
  DbFiles files(dir.path());
  const std::string tmp = files.MetricsHistoryFile() + ".tmp";
  ASSERT_TRUE(FileExists(tmp));
  std::string torn;
  ASSERT_OK(ReadFileToString(tmp, &torn));
  EXPECT_EQ(torn.size(), 150u);
  ASSERT_EQ(::rename(tmp.c_str(), files.MetricsHistoryFile().c_str()), 0);

  // Reopen: the torn history must not fail the open, and whatever valid
  // prefix exists is served.
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_LE((*db)->history()->size(), 3u);
}

TEST(ScrubMapTest, AgesGaugesAndFullAudit) {
  MetricsRegistry reg;
  ScrubMap map(&reg, {1000, 2000});
  ASSERT_EQ(map.shard_count(), 2u);

  // Before any pass, age runs from construction and only grows.
  uint64_t now = NowNs();
  uint64_t age0 = map.AgeNs(0, now + 1'000'000);
  EXPECT_GT(age0, 0u);
  EXPECT_GT(map.MaxAgeNs(now + 2'000'000), age0);

  map.NoteSlice(0, 500, 7);
  EXPECT_EQ(reg.gauge("scrub.shard0.cursor_pct")->Value(), 50);
  map.NotePassComplete(0, 7);
  EXPECT_EQ(reg.gauge("scrub.shard0.last_audit_lsn")->Value(), 7);
  EXPECT_GT(reg.gauge("scrub.shard0.last_pass_wall_ms")->Value(), 0);

  now = NowNs();
  // Shard 0 was just certified; shard 1 never — its age dominates.
  EXPECT_LT(map.AgeNs(0, now), map.AgeNs(1, now));
  EXPECT_EQ(map.MaxAgeNs(now), map.AgeNs(1, now));

  map.NoteFullAudit(9);
  EXPECT_EQ(reg.gauge("scrub.shard0.last_audit_lsn")->Value(), 9);
  EXPECT_EQ(reg.gauge("scrub.shard1.last_audit_lsn")->Value(), 9);
  now = NowNs();
  EXPECT_LT(map.MaxAgeNs(now), 1'000'000'000ull);  // Both fresh now.

  map.UpdateGauges(now);
  EXPECT_GE(reg.gauge("scrub.max_age_ms")->Value(), 0);

  auto snap = map.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].last_audit_lsn, 9u);
  EXPECT_EQ(snap[0].shard_len, 1000u);
  EXPECT_EQ(snap[1].shard_len, 2000u);
}

TEST(ScrubMapTest, AuditorPublishesCoverageAndSweepTelemetry) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  opts.shards = 2;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  auto t = (*db)->CreateTable(*txn, "t", 32, 64);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(32, 'x')).ok());
  ASSERT_OK((*db)->Commit(*txn));

  BackgroundAuditor::Options aopts;
  aopts.interval = std::chrono::milliseconds(1);
  aopts.slice_bytes = 256 << 10;
  BackgroundAuditor auditor(db->get(), aopts, nullptr);
  auditor.Start();
  auditor.WaitForFullSweep();
  auditor.Stop();
  ASSERT_FALSE(auditor.corruption_seen());

  // The sweep published per-shard coverage into the scrub map.
  ScrubMap* scrub = (*db)->scrub();
  ASSERT_NE(scrub, nullptr);
  auto snap = scrub->Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  for (const auto& s : snap) {
    EXPECT_GT(s.last_pass_mono_ns, 0u);
    EXPECT_GT(s.last_audit_lsn, 0u);
    EXPECT_GT(s.slices, 0u);
  }
  EXPECT_LT(scrub->MaxAgeNs(NowNs()), 60ull * 1'000'000'000);

  // Sweep telemetry: per-round and per-sweep counters plus the duration
  // histogram.
  MetricsRegistry* m = (*db)->metrics();
  EXPECT_GT(m->counter("auditor.slices")->Value(), 0u);
  EXPECT_GE(m->counter("auditor.sweeps_completed")->Value(), 2u);
  EXPECT_EQ(m->counter("auditor.sweeps_completed")->Value(),
            m->counter("audit.background_sweeps")->Value());
  EXPECT_GE(m->histogram("auditor.sweep_duration_ns")->Count(), 2u);
  EXPECT_GT(m->counter("audit.shard0.slices")->Value(), 0u);
  EXPECT_GT(m->counter("audit.shard1.slices")->Value(), 0u);

  // A foreground full audit certifies every shard at its audit LSN.
  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->clean);
  snap = scrub->Snapshot();
  for (const auto& s : snap) {
    EXPECT_EQ(s.last_audit_lsn, report->audit_lsn);
  }
}

/// Short two-window SLO config so burn and recovery both happen inside a
/// test-sized wall-clock budget.
SloOptions FastSlo() {
  SloOptions slo;
  slo.enabled = true;
  slo.commit_p99_ns = 0;
  slo.detection_p99_ns = 0;
  slo.max_scrub_age_ms = 0;
  slo.stall_budget = 0;
  slo.windows = {{200, 1.0}, {400, 1.0}};
  return slo;
}

TEST(SloEngineTest, BurnFilesDossierDegradesHealthzAndRecovers) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  opts.slo = FastSlo();
  opts.slo.commit_p99_ns = 1;  // Every commit is a bad event: instant burn.
  opts.serve_stats = true;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_NE((*db)->slo(), nullptr);
  ASSERT_NE((*db)->stats_port(), 0);

  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  auto t = (*db)->CreateTable(*txn, "t", 32, 64);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(32, 'x')).ok());
  ASSERT_OK((*db)->Commit(*txn));
  for (int i = 0; i < 9; ++i) {
    txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(32, 'y')).ok());
    ASSERT_OK((*db)->Commit(*txn));
  }
  // Each SampleNow ticks the SLO engine; two samples arm the windows.
  (*db)->history()->SampleNow();
  (*db)->history()->SampleNow();

  ASSERT_TRUE((*db)->slo()->AnyBurning());
  std::string reason = (*db)->slo()->BurnReason();
  EXPECT_EQ(reason.compare(0, 16, "slo: commit_p99 "), 0) << reason;

  // /healthz degrades to 503 with the burn reason.
  std::string resp = HttpGet((*db)->stats_port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 503"), std::string::npos) << resp;
  EXPECT_NE(resp.find("slo: commit_p99"), std::string::npos) << resp;

  // One kSloBurn dossier was filed, and exactly one per episode.
  std::string incidents = HttpGet((*db)->stats_port(), "/incidents");
  EXPECT_NE(incidents.find("\"source\":\"slo_burn\""), std::string::npos)
      << incidents;
  auto states = (*db)->slo()->Snapshot();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].burn_episodes, 1u);
  EXPECT_GE(states[0].last_incident_id, 1u);

  // Still burning on the next tick: no second dossier (hysteresis).
  (*db)->history()->SampleNow();
  states = (*db)->slo()->Snapshot();
  EXPECT_EQ(states[0].burn_episodes, 1u);

  // Recovery: the bad events age out of both windows.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  (*db)->history()->SampleNow();
  EXPECT_FALSE((*db)->slo()->AnyBurning());
  resp = HttpGet((*db)->stats_port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("ok\n"), std::string::npos);

  // The SLO report reflects the episode after recovery.
  std::string report = (*db)->slo()->ReportJson();
  EXPECT_NE(report.find("\"name\": \"commit_p99\""), std::string::npos);
  EXPECT_NE(report.find("\"burn_episodes\": 1"), std::string::npos);
  EXPECT_NE(report.find("\"burning\": false"), std::string::npos);
}

TEST(SloEngineTest, CorruptionStormBurnsDetectionSloThenRecovers) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  opts.slo = FastSlo();
  opts.slo.detection_p99_ns = 1;  // Any detected fault burns the budget.
  opts.serve_stats = true;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  auto t = (*db)->CreateTable(*txn, "t", 64, 64);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(64, 'a')).ok());
  }
  ASSERT_OK((*db)->Commit(*txn));

  // A storm of wild writes across the table's records, then the audit
  // that detects them (stamping protect.detection_latency_ns). Each write
  // hits a distinct codeword region with a distinct payload: identical
  // deltas within one region would cancel in the XOR fold.
  FaultInjector inject(db->get(), 7);
  for (int i = 0; i < 4; ++i) {
    auto off = (*db)->image()->RecordOff(*t, static_cast<uint32_t>(i * 8));
    inject.WildWriteAt(off, std::string(2, static_cast<char>('A' + i)));
  }
  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  ASSERT_GT(
      (*db)->metrics()->histogram("protect.detection_latency_ns")->Count(),
      0u);

  (*db)->history()->SampleNow();
  (*db)->history()->SampleNow();
  ASSERT_TRUE((*db)->slo()->AnyBurning());
  EXPECT_NE((*db)->slo()->BurnReason().find("detection_p99"),
            std::string::npos);

  // Degraded: the corruption note outranks the SLO burn on /healthz, but
  // it is 503 either way, and the burn dossier is on the incident log
  // next to the audit's.
  std::string resp = HttpGet((*db)->stats_port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 503"), std::string::npos) << resp;
  std::string incidents = HttpGet((*db)->stats_port(), "/incidents");
  EXPECT_NE(incidents.find("\"source\":\"slo_burn\""), std::string::npos);
  EXPECT_NE(incidents.find("detection_p99"), std::string::npos);

  // Recover the corruption, let the detection samples age out of the
  // windows: health and SLO both return to green.
  ASSERT_OK((*db)->RecoverFromCorruption(report->ranges));
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  (*db)->history()->SampleNow();
  EXPECT_FALSE((*db)->slo()->AnyBurning());
  resp = HttpGet((*db)->stats_port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos) << resp;
}

TEST(TopViewTest, TpcbHistoryRendersTopQueryAndScrubMap) {
  TempDir dir;
  TpcbConfig cfg;
  cfg.accounts = 200;
  cfg.tellers = 20;
  cfg.branches = 4;
  cfg.ops_per_txn = 1;
  cfg.history_capacity = 2000;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  TpcbWorkload workload(db->get(), cfg);
  ASSERT_OK(workload.Setup());

  (*db)->history()->SampleNow();
  ASSERT_TRUE(workload.RunConcurrent(2, 300).ok());
  (*db)->history()->SampleNow();

  // The acceptance triad: a non-empty top view, a non-empty /query
  // answer, and a scrub map that shows staleness.
  std::string top = (*db)->history()->RenderTop((*db)->history()->LatestMono());
  EXPECT_NE(top.find("commit"), std::string::npos) << top;
  EXPECT_NE(top.find("samples"), std::string::npos) << top;

  auto q = (*db)->history()->QueryJson("metric=txn.commits&window=1h");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NE(q->find("\"rate_per_s\""), std::string::npos);
  EXPECT_NE(q->find("\"wall_ms\""), std::string::npos);

  (*db)->scrub()->UpdateGauges(NowNs());
  std::string map =
      RenderScrubMap((*db)->metrics()->Capture().gauges, WallNowNs());
  EXPECT_NE(map.find("shard"), std::string::npos) << map;
  EXPECT_NE(map.find("never"), std::string::npos) << map;  // No sweep ran.

  // And the same triad works from the persisted file, the way cwdb_ctl
  // top reads it on a cold directory.
  ASSERT_TRUE((*db)->DumpMetrics().ok());
  DbFiles files(dir.path());
  MetricsHistory cold(nullptr, HistoryOptions{});
  ASSERT_OK(cold.LoadFrom(files.MetricsHistoryFile()));
  ASSERT_GT(cold.size(), 0u);
  EXPECT_FALSE(cold.RenderTop(cold.LatestMono()).empty());
}

}  // namespace
}  // namespace cwdb
