// Stats-endpoint tests: the Prometheus rendering must be valid text
// exposition format 0.0.4 (one HELP + one TYPE per series, no duplicate
// series, counters suffixed _total), and the live server must answer
// /metrics, /incidents and /healthz correctly — on 127.0.0.1 only.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "faultinject/fault_injector.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

/// Blocking one-shot HTTP GET against 127.0.0.1:port. Returns the full
/// response (head + body), empty on connect failure.
std::string HttpGet(uint16_t port, const std::string& path,
                    const std::string& verb = "GET") {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = verb + " " + path + " HTTP/1.0\r\n\r\n";
  size_t done = 0;
  while (done < req.size()) {
    ssize_t n = ::write(fd, req.data() + done, req.size() - done);
    if (n <= 0) break;
    done += static_cast<size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string BodyOf(const std::string& resp) {
  size_t pos = resp.find("\r\n\r\n");
  return pos == std::string::npos ? "" : resp.substr(pos + 4);
}

/// Validates exposition-format structure: every sample's metric family has
/// exactly one HELP and one TYPE line, and no sample line repeats.
void ValidateExposition(const std::string& text) {
  std::map<std::string, int> help_count;
  std::map<std::string, int> type_count;
  std::map<std::string, int> sample_count;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "#") {
      std::string kind, name;
      ls >> kind >> name;
      ASSERT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      (kind == "HELP" ? help_count : type_count)[name]++;
    } else {
      // Sample line: "<name>[{labels}] <value>".
      std::string name = tok.substr(0, tok.find('{'));
      EXPECT_FALSE(name.empty()) << line;
      EXPECT_EQ(name.compare(0, 5, "cwdb_"), 0) << line;
      sample_count[line]++;
      EXPECT_EQ(sample_count[line], 1) << "duplicate sample: " << line;
      // The declared family: quantile/bucket/sum/count samples of a
      // summary or histogram declare under the base name.
      std::string family = name;
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        size_t len = std::strlen(suffix);
        if (family.size() > len &&
            family.compare(family.size() - len, len, suffix) == 0 &&
            type_count.count(family.substr(0, family.size() - len)) != 0) {
          family = family.substr(0, family.size() - len);
        }
      }
      EXPECT_EQ(help_count[family], 1) << "family " << family << ": " << line;
      EXPECT_EQ(type_count[family], 1) << "family " << family << ": " << line;
    }
  }
  for (const auto& [name, n] : help_count) {
    EXPECT_EQ(n, 1) << "HELP repeated for " << name;
    EXPECT_EQ(type_count[name], 1) << "TYPE missing/repeated for " << name;
  }
}

TEST(RenderPrometheus, ValidExposition) {
  MetricsRegistry reg;
  reg.counter("txn.commits")->Add(41);
  reg.counter("txn.aborts")->Add(2);
  reg.gauge("txn.active")->Set(3);
  for (uint64_t v : {100u, 200u, 400u, 800u}) {
    reg.histogram("txn.commit_latency_ns")->Record(v);
  }
  std::string text = RenderPrometheus(reg.Capture());
  ValidateExposition(text);

  EXPECT_NE(text.find("cwdb_txn_commits_total 41\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cwdb_txn_commits_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwdb_txn_active 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cwdb_txn_commit_latency_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwdb_txn_commit_latency_ns_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text.find("cwdb_txn_commit_latency_ns_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwdb_txn_commit_latency_ns_count 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwdb_txn_commit_latency_ns_sum 1500\n"),
            std::string::npos);
  // Scrape-time anchor for aligning with incident wall stamps.
  EXPECT_NE(text.find("cwdb_boot_wall_seconds "), std::string::npos);
}

TEST(StatsServer, ServesMetricsIncidentsAndHealth) {
  MetricsRegistry reg;
  reg.counter("test.hits")->Add(7);
  bool healthy = true;
  StatsServer server;
  StatsServer::Hooks hooks;
  hooks.snapshot = [&reg] { return reg.Capture(); };
  hooks.incidents_jsonl = [] { return std::string("{\"id\":1}\n"); };
  hooks.healthy = [&healthy] { return healthy; };
  ASSERT_OK(server.Start(StatsServerOptions{}, std::move(hooks)));
  ASSERT_NE(server.port(), 0);

  std::string resp = HttpGet(server.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(resp.find("cwdb_test_hits_total 7\n"), std::string::npos);
  ValidateExposition(BodyOf(resp));

  // Routing matches on the path alone: a query string must not turn a
  // known route into a 404 (Prometheus scrapers append parameters).
  resp = HttpGet(server.port(), "/metrics?x=y");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("cwdb_test_hits_total 7\n"), std::string::npos);
  resp = HttpGet(server.port(), "/healthz?verbose=1");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);

  resp = HttpGet(server.port(), "/incidents");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/jsonl"), std::string::npos);
  EXPECT_EQ(BodyOf(resp), "{\"id\":1}\n");

  resp = HttpGet(server.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(resp), "ok\n");
  healthy = false;
  resp = HttpGet(server.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 503"), std::string::npos);
  EXPECT_EQ(BodyOf(resp), "corrupt\n");

  resp = HttpGet(server.port(), "/nope");
  EXPECT_NE(resp.find("HTTP/1.0 404"), std::string::npos);
  resp = HttpGet(server.port(), "/metrics", "POST");
  EXPECT_NE(resp.find("HTTP/1.0 405"), std::string::npos);

  uint16_t port = server.port();
  server.Stop();
  EXPECT_EQ(server.port(), 0);
  EXPECT_TRUE(HttpGet(port, "/metrics").empty());
}

TEST(StatsServer, QueryRouteAndSloHealth) {
  MetricsRegistry reg;
  std::string slo_reason;
  StatsServer server;
  StatsServer::Hooks hooks;
  hooks.snapshot = [&reg] { return reg.Capture(); };
  hooks.healthy = [] { return true; };
  hooks.query = [](std::string_view query) -> Result<std::string> {
    if (query == "metric=ok") return std::string("{\"metric\": \"ok\"}\n");
    return Status::InvalidArgument("unknown metric");
  };
  hooks.slo = [&slo_reason] { return slo_reason; };
  ASSERT_OK(server.Start(StatsServerOptions{}, std::move(hooks)));

  // /query hands the query string to the hook: 200 on success, 400 with
  // the status text on a bad query.
  std::string resp = HttpGet(server.port(), "/query?metric=ok");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_EQ(BodyOf(resp), "{\"metric\": \"ok\"}\n");
  resp = HttpGet(server.port(), "/query?metric=bogus");
  EXPECT_NE(resp.find("HTTP/1.0 400"), std::string::npos);
  EXPECT_NE(resp.find("unknown metric"), std::string::npos);

  // /healthz degrades to 503 while the slo hook reports a burn, and
  // recovers with it.
  resp = HttpGet(server.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  slo_reason = "slo: commit_p99 burn 8.1x";
  resp = HttpGet(server.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 503"), std::string::npos);
  EXPECT_EQ(BodyOf(resp), "slo: commit_p99 burn 8.1x\n");
  slo_reason.clear();
  resp = HttpGet(server.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST(StatsServer, QueryWithoutHistoryIs404) {
  MetricsRegistry reg;
  StatsServer server;
  StatsServer::Hooks hooks;
  hooks.snapshot = [&reg] { return reg.Capture(); };
  ASSERT_OK(server.Start(StatsServerOptions{}, std::move(hooks)));
  std::string resp = HttpGet(server.port(), "/query?metric=x");
  EXPECT_NE(resp.find("HTTP/1.0 404"), std::string::npos);
}

TEST(StatsServer, DatabaseIntegration) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  opts.serve_stats = true;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_NE((*db)->stats_port(), 0);

  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  auto t = (*db)->CreateTable(*txn, "t", 32, 64);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(32, 'x')).ok());
  ASSERT_OK((*db)->Commit(*txn));

  std::string metrics = BodyOf(HttpGet((*db)->stats_port(), "/metrics"));
  ValidateExposition(metrics);
  uint64_t commits = (*db)->metrics()->counter("txn.commits")->Value();
  ASSERT_GT(commits, 0u);
  EXPECT_NE(metrics.find("cwdb_txn_commits_total " +
                         std::to_string(commits) + "\n"),
            std::string::npos);

  // GET /query serves time series out of the database's history ring.
  (*db)->history()->SampleNow();
  (*db)->history()->SampleNow();
  std::string q =
      HttpGet((*db)->stats_port(), "/query?metric=txn.commits&window=60s");
  EXPECT_NE(q.find("HTTP/1.0 200 OK"), std::string::npos) << q;
  EXPECT_NE(q.find("\"rate_per_s\""), std::string::npos);
  q = HttpGet((*db)->stats_port(), "/query?metric=no.such&window=60s");
  EXPECT_NE(q.find("HTTP/1.0 400"), std::string::npos);

  // A healthy database reports ok; after a failed audit writes the
  // corruption note it must report corrupt.
  EXPECT_NE(HttpGet((*db)->stats_port(), "/healthz").find("200 OK"),
            std::string::npos);
  FaultInjector inject(db->get(), 3);
  auto table_off = (*db)->image()->RecordOff(*t, 0);
  inject.WildWriteAt(table_off, "bad");
  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  EXPECT_NE(HttpGet((*db)->stats_port(), "/healthz").find("HTTP/1.0 503"),
            std::string::npos);
  // The filed dossier is served back on /incidents.
  std::string incidents = BodyOf(HttpGet((*db)->stats_port(), "/incidents"));
  EXPECT_NE(incidents.find("\"source\":\"audit\""), std::string::npos);
}

}  // namespace
}  // namespace cwdb
