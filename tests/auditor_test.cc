// Tests of the background auditor (§3.2 asynchronous audits): sliced
// sweeps, bounded detection latency, Audit_SN advancement on clean sweeps,
// the corruption callback path, and end-to-end recovery triggered from the
// auditor. Plus concurrent-workload tests: audits racing transactions,
// scans, and the multi-threaded TPC-B extension.

#include "core/auditor.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/file_util.h"
#include "faultinject/fault_injector.h"
#include "recovery/corrupt_note.h"
#include "tests/test_util.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

/// Image offset of a *different* region in the same parity group as `off`
/// (fixture geometry: 512-byte regions, default 64-region groups).
/// Corrupting both exceeds the repair tier's one-region-per-group budget,
/// so the auditor must fall back to the detection callback instead of
/// silently reconstructing the damage in place.
DbPtr SameGroupSibling(DbPtr off) {
  constexpr uint64_t kRegion = 512, kGroup = 64;
  uint64_t r = off / kRegion;
  uint64_t sib = (r % kGroup != kGroup - 1) ? r + 1 : r - 1;
  return sib * kRegion;
}

class AuditorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword, 512));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 100, 512);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_->Insert(*txn, table_, std::string(100, 'a')).ok());
    }
    ASSERT_OK(db_->Commit(*txn));
  }

  static BackgroundAuditor::Options FastOptions() {
    BackgroundAuditor::Options o;
    o.interval = std::chrono::milliseconds(1);
    o.slice_bytes = 256 << 10;
    return o;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

TEST_F(AuditorTest, CleanDatabaseSweepsForever) {
  BackgroundAuditor auditor(db_.get(), FastOptions(), nullptr);
  auditor.Start();
  auditor.WaitForFullSweep();
  auditor.Stop();
  EXPECT_GE(auditor.sweeps_completed(), 2u);
  EXPECT_FALSE(auditor.corruption_seen());
}

TEST_F(AuditorTest, CleanSweepAdvancesAuditSn) {
  Lsn before = db_->CurrentLsn();
  BackgroundAuditor auditor(db_.get(), FastOptions(), nullptr);
  auditor.Start();
  auditor.WaitForFullSweep();
  auditor.Stop();
  DbFiles files(dir_.path());
  auto lsn = ReadAuditMeta(files.AuditMeta());
  ASSERT_TRUE(lsn.ok());
  EXPECT_GE(*lsn, before);
}

TEST_F(AuditorTest, DetectsInjectedCorruptionAndFiresCallback) {
  std::atomic<bool> fired{false};
  AuditReport captured;
  BackgroundAuditor auditor(db_.get(), FastOptions(),
                            [&](const AuditReport& report) {
                              captured = report;
                              fired = true;
                            });
  auditor.Start();
  auditor.WaitForFullSweep();  // Let it establish a clean baseline.

  // Two corrupt regions in one parity group: past the repair tier's
  // correction budget, so the sweep must surface the damage instead of
  // fixing it in place.
  FaultInjector inject(db_.get(), 9);
  DbPtr off = db_->image()->RecordOff(table_, 50);
  inject.WildWriteAt(off, "ASYNC CORRUPTION");
  inject.WildWriteAt(SameGroupSibling(off) + 16, "ASYNC CORRUPTION");

  // Bounded detection latency: within ~one sweep.
  auditor.WaitForFullSweep();
  auditor.Stop();
  ASSERT_TRUE(fired.load());
  EXPECT_FALSE(captured.clean);
  ASSERT_FALSE(captured.ranges.empty());
  // The note is durable: a subsequent open runs corruption recovery.
  DbFiles files(dir_.path());
  EXPECT_TRUE(FileExists(files.CorruptNote()));
}

TEST_F(AuditorTest, LoneCorruptionIsRepairedInPlaceWithoutCallback) {
  // A single corrupt region per parity group is within the repair tier's
  // correction budget: the sweep reconstructs it in place, re-audits, and
  // never escalates to the corruption callback.
  std::atomic<bool> fired{false};
  BackgroundAuditor auditor(db_.get(), FastOptions(),
                            [&](const AuditReport&) { fired = true; });
  auditor.Start();
  auditor.WaitForFullSweep();
  FaultInjector inject(db_.get(), 12);
  ASSERT_TRUE(
      inject.WildWriteAt(db_->image()->RecordOff(table_, 50), "wild@r1te")
          .changed_bits);
  auditor.WaitForFullSweep();
  auditor.WaitForFullSweep();  // At least one full sweep past the repair.
  auditor.Stop();
  EXPECT_FALSE(fired.load());
  EXPECT_GE(db_->metrics()->counter("repair.success")->Value(), 1u);

  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
  auto txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, 50, &got));
  EXPECT_EQ(got, std::string(100, 'a'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(AuditorTest, CallbackDrivenRecoveryRoundTrip) {
  std::atomic<bool> fired{false};
  BackgroundAuditor auditor(db_.get(), FastOptions(),
                            [&](const AuditReport&) { fired = true; });
  auditor.Start();
  auditor.WaitForFullSweep();
  // Exceed the correction budget so the callback-driven recovery path runs
  // rather than an in-place repair.
  FaultInjector inject(db_.get(), 10);
  DbPtr off = db_->image()->RecordOff(table_, 7);
  inject.WildWriteAt(off, "ZAP");
  inject.WildWriteAt(SameGroupSibling(off) + 8, "ZAP");
  auditor.WaitForFullSweep();
  auditor.Stop();
  ASSERT_TRUE(fired.load());

  // "Cause the database to crash" — from outside the callback here.
  ASSERT_OK(db_->CrashAndRecover());
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
  auto txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, 7, &got));
  EXPECT_EQ(got, std::string(100, 'a'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(AuditorTest, SweepsConcurrentWithUpdates) {
  // The §3.2 concurrency design: updaters hold the protection latch shared
  // and fold under the codeword latch; the auditor takes regions exclusive
  // one at a time. Run both at once and require zero false positives.
  std::atomic<bool> corrupt{false};
  BackgroundAuditor auditor(db_.get(), FastOptions(),
                            [&](const AuditReport&) { corrupt = true; });
  auditor.Start();
  for (int round = 0; round < 20; ++round) {
    auto txn = db_->Begin();
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(db_->Update(*txn, table_, i % 200, (i * 4) % 96, "busy"));
    }
    ASSERT_OK(db_->Commit(*txn));
  }
  auditor.WaitForFullSweep();
  auditor.Stop();
  EXPECT_FALSE(corrupt.load()) << "audit raced an update into a false alarm";
}

// ---------- Parallel audit slices ----------
// Both the scheme's sweep pool and the auditor's per-slice fan-out are
// pinned > 1 lane so the parallel path runs even on a single-CPU host.

class ParallelAuditorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts =
        SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword, 512);
    opts.protection.sweep_threads = 4;
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 100, 512);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_->Insert(*txn, table_, std::string(100, 'a')).ok());
    }
    ASSERT_OK(db_->Commit(*txn));
  }

  static BackgroundAuditor::Options ParallelOptions() {
    BackgroundAuditor::Options o;
    o.interval = std::chrono::milliseconds(1);
    o.slice_bytes = 256 << 10;
    o.threads = 4;
    return o;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

TEST_F(ParallelAuditorTest, DetectsInjectedCorruptionAcrossLanes) {
  std::atomic<bool> fired{false};
  AuditReport captured;
  BackgroundAuditor auditor(db_.get(), ParallelOptions(),
                            [&](const AuditReport& report) {
                              captured = report;
                              fired = true;
                            });
  auditor.Start();
  auditor.WaitForFullSweep();

  // Over-budget damage (two regions, one group) so the parallel lanes
  // must report it rather than repair it away.
  FaultInjector inject(db_.get(), 21);
  DbPtr off = db_->image()->RecordOff(table_, 50);
  inject.WildWriteAt(off, "LANE CORRUPTION");
  inject.WildWriteAt(SameGroupSibling(off) + 32, "LANE CORRUPTION");

  auditor.WaitForFullSweep();
  auditor.Stop();
  ASSERT_TRUE(fired.load());
  EXPECT_FALSE(captured.clean);
  ASSERT_FALSE(captured.ranges.empty());
  // The callback contract is unchanged: ranges arrive ascending.
  for (size_t i = 1; i < captured.ranges.size(); ++i) {
    EXPECT_LT(captured.ranges[i - 1].off, captured.ranges[i].off);
  }
}

TEST_F(ParallelAuditorTest, ParallelSlicesStayCleanUnderUpdateLoad) {
  // The §3.2 latch argument, now per sweep lane: updaters hold the
  // protection latch shared, every lane audits one region at a time under
  // the exclusive latch — concurrent prescribed updates must never turn
  // into false alarms.
  std::atomic<bool> corrupt{false};
  BackgroundAuditor auditor(db_.get(), ParallelOptions(),
                            [&](const AuditReport&) { corrupt = true; });
  auditor.Start();
  for (int round = 0; round < 20; ++round) {
    auto txn = db_->Begin();
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(db_->Update(*txn, table_, i % 200, (i * 4) % 96, "busy"));
    }
    ASSERT_OK(db_->Commit(*txn));
  }
  auditor.WaitForFullSweep();
  auditor.Stop();
  EXPECT_FALSE(corrupt.load()) << "parallel audit raced an update";
}

// ---------- Scan API ----------

TEST(ScanTest, VisitsAllLiveRecordsInOrder) {
  TempDir dir;
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kReadPrecheck, 128));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 128, 64);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*db)->Insert(*txn, *t, std::string(128, 'a' + i)).ok());
  }
  ASSERT_OK((*db)->Delete(*txn, *t, 3));
  ASSERT_OK((*db)->Delete(*txn, *t, 7));
  ASSERT_OK((*db)->Commit(*txn));

  txn = (*db)->Begin();
  std::vector<uint32_t> visited;
  ASSERT_OK((*db)->Scan(*txn, *t, [&](uint32_t slot, Slice record) {
    visited.push_back(slot);
    EXPECT_EQ(record.size(), 128u);
    EXPECT_EQ(record[0], 'a' + static_cast<char>(slot));
    return Status::OK();
  }));
  ASSERT_OK((*db)->Commit(*txn));
  EXPECT_EQ(visited, (std::vector<uint32_t>{0, 1, 2, 4, 5, 6, 8, 9}));
}

TEST(ScanTest, CallbackErrorStopsScan) {
  TempDir dir;
  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kNone));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 16, 16);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(16, 'x')).ok());
  }
  int seen = 0;
  Status s = (*db)->Scan(*txn, *t, [&](uint32_t, Slice) {
    return ++seen == 3 ? Status::Aborted("enough") : Status::OK();
  });
  EXPECT_EQ(s.code(), Status::Code::kAborted);
  EXPECT_EQ(seen, 3);
  ASSERT_OK((*db)->Commit(*txn));
}

TEST(ScanTest, PrecheckedScanRepairsCorruptRecordInPlace) {
  TempDir dir;
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kReadPrecheck, 128));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 128, 16);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(128, 's')).ok());
  }
  ASSERT_OK((*db)->Commit(*txn));

  FaultInjector inject(db->get(), 3);
  ASSERT_TRUE(
      inject.WildWriteAt((*db)->image()->RecordOff(*t, 2), "BAD").changed_bits);

  // The scan's precheck detects the lone corrupt region and repairs it
  // from its parity group in place: every record comes back intact.
  txn = (*db)->Begin();
  int seen = 0;
  Status s = (*db)->Scan(*txn, *t, [&](uint32_t, Slice data) {
    EXPECT_EQ(data.ToString(), std::string(128, 's'));
    ++seen;
    return Status::OK();
  });
  EXPECT_OK(s);
  EXPECT_EQ(seen, 4);
  EXPECT_GE((*db)->metrics()->counter("repair.success")->Value(), 1u);
  ASSERT_OK((*db)->Abort(*txn));
  auto audit = (*db)->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

// ---------- Concurrent TPC-B extension ----------

TEST(ConcurrentTpcb, InvariantsHoldUnderFourWorkers) {
  TempDir dir;
  TpcbConfig cfg;
  cfg.accounts = 500;
  cfg.tellers = 50;
  cfg.branches = 5;
  cfg.ops_per_txn = 20;
  cfg.history_capacity = 6000;
  DatabaseOptions opts = SmallDbOptions(dir.path(),
                                        ProtectionScheme::kDataCodeword);
  opts.arena_size =
      std::max<uint64_t>(opts.arena_size, cfg.MinArenaSize(opts.page_size));
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok());
  TpcbWorkload workload(db->get(), cfg);
  ASSERT_OK(workload.Setup());
  auto rate = workload.RunConcurrent(4, 2000);
  ASSERT_TRUE(rate.ok()) << rate.status().ToString();
  ASSERT_OK(workload.CheckConsistency());
  EXPECT_EQ((*db)->CountRecords(workload.history()), 2000u);
  auto audit = (*db)->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST(ConcurrentTpcb, SurvivesCrashAfterConcurrentRun) {
  TempDir dir;
  TpcbConfig cfg;
  cfg.accounts = 300;
  cfg.tellers = 30;
  cfg.branches = 3;
  cfg.ops_per_txn = 10;
  cfg.history_capacity = 3000;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kReadLog);
  opts.arena_size =
      std::max<uint64_t>(opts.arena_size, cfg.MinArenaSize(opts.page_size));
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok());
  TpcbWorkload workload(db->get(), cfg);
  ASSERT_OK(workload.Setup());
  ASSERT_TRUE(workload.RunConcurrent(3, 900).ok());
  ASSERT_OK((*db)->CrashAndRecover());
  TpcbWorkload check(db->get(), cfg);
  ASSERT_OK(check.Attach());
  ASSERT_OK(check.CheckConsistency());
  EXPECT_EQ((*db)->CountRecords(check.history()), 900u);
}

}  // namespace
}  // namespace cwdb
