// End-to-end tests of the Database facade: schema, record operations,
// commit/abort semantics, persistence across crash + restart recovery, and
// behaviour under every protection scheme.

#include "core/database.h"

#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/checkpoint.h"
#include "common/file_util.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

class DatabaseSchemeTest
    : public ::testing::TestWithParam<ProtectionScheme> {
 protected:
  void Open() {
    auto db = Database::Open(SmallDbOptions(dir_.path(), GetParam()));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }
  void Reopen() {
    db_.reset();
    Open();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_P(DatabaseSchemeTest, OpenFreshAndReopen) {
  Open();
  EXPECT_NE(db_->UnsafeRawBase(), nullptr);
  Reopen();
  EXPECT_TRUE(db_->last_recovery_report().deleted_txns.empty());
}

TEST_P(DatabaseSchemeTest, CreateInsertReadCommit) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  auto table = db_->CreateTable(*txn, "t", 64, 100);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  std::string record(64, 'x');
  auto rid = db_->Insert(*txn, *table, record);
  ASSERT_TRUE(rid.ok()) << rid.status().ToString();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *table, rid->slot, &got));
  EXPECT_EQ(got, record);
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(db_->CountRecords(*table), 1u);
}

TEST_P(DatabaseSchemeTest, UpdateField) {
  Open();
  auto txn = db_->Begin();
  auto table = db_->CreateTable(*txn, "t", 32, 10);
  ASSERT_TRUE(table.ok());
  std::string record(32, 'a');
  auto rid = db_->Insert(*txn, *table, record);
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Update(*txn, *table, rid->slot, 4, "ZZZZ"));
  std::string got;
  ASSERT_OK(db_->Read(*txn, *table, rid->slot, &got));
  EXPECT_EQ(got.substr(0, 8), "aaaaZZZZ");
  ASSERT_OK(db_->Commit(*txn));
}

TEST_P(DatabaseSchemeTest, DeleteRecord) {
  Open();
  auto txn = db_->Begin();
  auto table = db_->CreateTable(*txn, "t", 16, 10);
  ASSERT_TRUE(table.ok());
  auto rid = db_->Insert(*txn, *table, std::string(16, 'q'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  ASSERT_OK(db_->Delete(*txn, *table, rid->slot));
  std::string got;
  EXPECT_TRUE(db_->Read(*txn, *table, rid->slot, &got).IsNotFound());
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(db_->CountRecords(*table), 0u);
}

TEST_P(DatabaseSchemeTest, AbortRollsBackEverything) {
  Open();
  auto txn = db_->Begin();
  auto table = db_->CreateTable(*txn, "t", 16, 10);
  ASSERT_TRUE(table.ok());
  auto rid = db_->Insert(*txn, *table, std::string(16, '1'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));

  // Abort an update + insert + delete.
  txn = db_->Begin();
  ASSERT_OK(db_->Update(*txn, *table, rid->slot, 0, "XX"));
  auto rid2 = db_->Insert(*txn, *table, std::string(16, '2'));
  ASSERT_TRUE(rid2.ok());
  ASSERT_OK(db_->Delete(*txn, *table, rid->slot));
  ASSERT_OK(db_->Abort(*txn));

  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *table, rid->slot, &got));
  EXPECT_EQ(got, std::string(16, '1'));  // Update + delete undone.
  EXPECT_TRUE(
      db_->Read(*txn, *table, rid2->slot, &got).IsNotFound());  // Insert undone.
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(db_->CountRecords(*table), 1u);
}

TEST_P(DatabaseSchemeTest, AbortedCreateTableDisappears) {
  Open();
  auto txn = db_->Begin();
  auto table = db_->CreateTable(*txn, "doomed", 16, 10);
  ASSERT_TRUE(table.ok());
  ASSERT_OK(db_->Abort(*txn));
  EXPECT_TRUE(db_->FindTable("doomed").status().IsNotFound());
}

TEST_P(DatabaseSchemeTest, CommittedDataSurvivesCrashWithoutCheckpoint) {
  Open();
  auto txn = db_->Begin();
  auto table = db_->CreateTable(*txn, "t", 16, 100);
  ASSERT_TRUE(table.ok());
  auto rid = db_->Insert(*txn, *table, std::string(16, 'd'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));

  // No checkpoint taken since the data was written: recovery must replay
  // the log from checkpoint zero.
  ASSERT_OK(db_->CrashAndRecover());

  auto t2 = db_->FindTable("t");
  ASSERT_TRUE(t2.ok());
  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *t2, rid->slot, &got));
  EXPECT_EQ(got, std::string(16, 'd'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_P(DatabaseSchemeTest, UncommittedDataRolledBackOnCrash) {
  Open();
  auto txn = db_->Begin();
  auto table = db_->CreateTable(*txn, "t", 16, 100);
  ASSERT_TRUE(table.ok());
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  auto rid = db_->Insert(*txn, *table, std::string(16, 'u'));
  ASSERT_TRUE(rid.ok());
  // Crash with the transaction open; its operations committed (and moved
  // to the tail) but the transaction did not.
  ASSERT_OK(db_->CrashAndRecover());

  EXPECT_EQ(db_->CountRecords(*db_->FindTable("t")), 0u);
}

TEST_P(DatabaseSchemeTest, CheckpointThenCrashRecovers) {
  Open();
  auto txn = db_->Begin();
  auto table = db_->CreateTable(*txn, "t", 16, 100);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_->Insert(*txn, *table, std::string(16, 'a' + i % 26)).ok());
  }
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());

  txn = db_->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Insert(*txn, *table, std::string(16, 'z')).ok());
  }
  ASSERT_OK(db_->Commit(*txn));

  ASSERT_OK(db_->CrashAndRecover());
  EXPECT_EQ(db_->CountRecords(*db_->FindTable("t")), 30u);
}

TEST_P(DatabaseSchemeTest, RepeatedCrashesAreIdempotent) {
  Open();
  auto txn = db_->Begin();
  auto table = db_->CreateTable(*txn, "t", 16, 100);
  ASSERT_TRUE(table.ok());
  auto rid = db_->Insert(*txn, *table, std::string(16, 'r'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));

  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(db_->CrashAndRecover());
    EXPECT_EQ(db_->CountRecords(*db_->FindTable("t")), 1u);
  }
}

TEST_P(DatabaseSchemeTest, ReopenFromDiskAfterDestruction) {
  Open();
  TableId table;
  {
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "persist", 24, 50);
    ASSERT_TRUE(t.ok());
    table = *t;
    ASSERT_TRUE(db_->Insert(*txn, table, std::string(24, 'p')).ok());
    ASSERT_OK(db_->Commit(*txn));
  }
  Reopen();  // Destructor does NOT flush; recovery replays the forced log.
  auto t2 = db_->FindTable("persist");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(db_->CountRecords(*t2), 1u);
}

TEST_P(DatabaseSchemeTest, RawUpdateGoesThroughPrescribedInterface) {
  Open();
  auto txn = db_->Begin();
  auto table = db_->CreateTable(*txn, "t", 16, 10);
  ASSERT_TRUE(table.ok());
  auto rid = db_->Insert(*txn, *table, std::string(16, '0'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));

  DbPtr off = db_->image()->RecordOff(*table, rid->slot);
  txn = db_->Begin();
  ASSERT_OK(db_->RawUpdate(*txn, off, "RAWBYTES"));
  ASSERT_OK(db_->Commit(*txn));

  // Codeword consistency holds after a raw update: audit is clean.
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean);

  // And it is recoverable.
  ASSERT_OK(db_->CrashAndRecover());
  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *db_->FindTable("t"), rid->slot, &got));
  EXPECT_EQ(got.substr(0, 8), "RAWBYTES");
  ASSERT_OK(db_->Commit(*txn));
}

TEST_P(DatabaseSchemeTest, ErrorsOnBadArguments) {
  Open();
  auto txn = db_->Begin();
  EXPECT_FALSE(db_->CreateTable(*txn, "", 16, 10).ok());
  EXPECT_FALSE(db_->CreateTable(*txn, "t", 0, 10).ok());
  auto table = db_->CreateTable(*txn, "t", 16, 4);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(db_->CreateTable(*txn, "t", 16, 4).status().code() ==
              Status::Code::kAlreadyExists);
  // Wrong record size.
  EXPECT_FALSE(db_->Insert(*txn, *table, std::string(8, 'x')).ok());
  // Table full after capacity inserts.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db_->Insert(*txn, *table, std::string(16, 'x')).ok());
  }
  EXPECT_TRUE(db_->Insert(*txn, *table, std::string(16, 'x')).status().code() ==
              Status::Code::kNoSpace);
  // Out-of-range slot.
  std::string got;
  EXPECT_FALSE(db_->Read(*txn, *table, 99, &got).ok());
  ASSERT_OK(db_->Commit(*txn));
}

TEST_P(DatabaseSchemeTest, MetricsCountScriptedWorkload) {
  Open();
  MetricsSnapshot before = db_->metrics()->Capture();

  // Scripted workload: 1 schema commit + 3 insert commits + 2 aborts.
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "m", 64, 100);
  ASSERT_TRUE(t.ok());
  ASSERT_OK(db_->Commit(*txn));
  for (int i = 0; i < 3; ++i) {
    auto w = db_->Begin();
    ASSERT_TRUE(db_->Insert(*w, *t, std::string(64, 'x')).ok());
    ASSERT_OK(db_->Commit(*w));
  }
  for (int i = 0; i < 2; ++i) {
    auto w = db_->Begin();
    ASSERT_TRUE(db_->Insert(*w, *t, std::string(64, 'y')).ok());
    ASSERT_OK(db_->Abort(*w));
  }

  MetricsSnapshot after = db_->metrics()->Capture();
  EXPECT_EQ(after.CounterValue("txn.commits") -
                before.CounterValue("txn.commits"),
            4u);
  EXPECT_EQ(after.CounterValue("txn.aborts") -
                before.CounterValue("txn.aborts"),
            2u);
  // Every commit awaits durability, so the script forces at least one
  // group-commit flush per commit (piggybacking could merge them only
  // under concurrency, and this script is serial).
  EXPECT_GE(after.CounterValue("wal.flushes") -
                before.CounterValue("wal.flushes"),
            4u);
  EXPECT_EQ(after.GaugeValue("txn.active"), 0);
  const HistogramSnapshot* commit_lat =
      after.FindHistogram("txn.commit_latency_ns");
  ASSERT_NE(commit_lat, nullptr);
  EXPECT_GE(commit_lat->h.count, 4u);

  // The legacy stats facade is a view over the same registry.
  DatabaseStats stats = db_->GetStats();
  EXPECT_EQ(stats.commits, after.CounterValue("txn.commits"));
  EXPECT_EQ(stats.aborts, after.CounterValue("txn.aborts"));
  EXPECT_EQ(stats.log_flushes, after.CounterValue("wal.flushes"));
}

TEST_P(DatabaseSchemeTest, DumpMetricsPersistsIdenticalSnapshot) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "m", 32, 10);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db_->Insert(*txn, *t, std::string(32, 'z')).ok());
  ASSERT_OK(db_->Commit(*txn));

  auto json = db_->DumpMetrics();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  std::string persisted;
  ASSERT_OK(ReadFileToString(DbFiles(dir_.path()).MetricsFile(), &persisted));
  // Byte-identical: `cwdb_ctl stats` re-emits this file verbatim, so the
  // offline view equals what DumpMetrics returned.
  EXPECT_EQ(*json, persisted);
  EXPECT_NE(json->find("\"txn.commits\""), std::string::npos);
  EXPECT_NE(json->find("\"txn.commit_latency_ns\""), std::string::npos);
  EXPECT_NE(json->find("\"protect.detection_latency_ns\""),
            std::string::npos);
  EXPECT_NE(json->find("\"events\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, DatabaseSchemeTest,
    ::testing::Values(ProtectionScheme::kNone, ProtectionScheme::kDataCodeword,
                      ProtectionScheme::kReadPrecheck,
                      ProtectionScheme::kReadLog,
                      ProtectionScheme::kCodewordReadLog,
                      ProtectionScheme::kHardware),
    [](const ::testing::TestParamInfo<ProtectionScheme>& info) {
      switch (info.param) {
        case ProtectionScheme::kNone: return std::string("Baseline");
        case ProtectionScheme::kDataCodeword: return std::string("DataCW");
        case ProtectionScheme::kReadPrecheck: return std::string("Precheck");
        case ProtectionScheme::kReadLog: return std::string("ReadLog");
        case ProtectionScheme::kCodewordReadLog: return std::string("CWReadLog");
        case ProtectionScheme::kHardware: return std::string("Hardware");
      }
      return std::string("Unknown");
    });

}  // namespace
}  // namespace cwdb
