// Tests of the lineage / audit-trail queries built on read logging (§1,
// §7): who read what, who wrote what, and forward taint closures for
// logical-corruption forensics — plus explicit RecoverFromCorruption for
// errors detected by means other than a codeword audit.

#include "core/lineage.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cwdb {
namespace {

class LineageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), ProtectionScheme::kReadLog, 128));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 128, 32);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    for (int i = 0; i < 8; ++i) {
      auto rid = db_->Insert(*txn, table_, std::string(128, '0' + i));
      ASSERT_TRUE(rid.ok());
      slots_[i] = rid->slot;
    }
    ASSERT_OK(db_->Commit(*txn));
  }

  TxnId ReadThenWrite(int src, int dst) {
    auto txn = db_->Begin();
    TxnId id = (*txn)->id();
    std::string got;
    EXPECT_OK(db_->Read(*txn, table_, slots_[src], &got));
    EXPECT_OK(db_->Update(*txn, table_, slots_[dst], 0, got.substr(0, 8)));
    EXPECT_OK(db_->Commit(*txn));
    return id;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
  uint32_t slots_[8] = {};
};

TEST_F(LineageTest, ReadersFindsExactlyTheReaders) {
  Lsn mark = db_->CurrentLsn();
  TxnId r1 = ReadThenWrite(3, 4);
  TxnId r2 = ReadThenWrite(3, 5);
  ReadThenWrite(0, 1);  // Reads something else.

  LineageTracer tracer(db_.get());
  CorruptRange range = tracer.RecordRange(table_, slots_[3]);
  auto readers = tracer.Readers(range.off, range.len, mark);
  ASSERT_TRUE(readers.ok()) << readers.status().ToString();
  std::set<TxnId> ids;
  for (const auto& a : *readers) {
    EXPECT_FALSE(a.is_write);
    ids.insert(a.txn);
  }
  EXPECT_EQ(ids, (std::set<TxnId>{r1, r2}));
}

TEST_F(LineageTest, ReadersHonorsSinceLsn) {
  ReadThenWrite(2, 4);  // Before the mark.
  Lsn mark = db_->CurrentLsn();
  ASSERT_OK(db_->log()->Flush());
  TxnId after = ReadThenWrite(2, 5);

  LineageTracer tracer(db_.get());
  CorruptRange range = tracer.RecordRange(table_, slots_[2]);
  auto readers = tracer.Readers(range.off, range.len, mark);
  ASSERT_TRUE(readers.ok());
  ASSERT_EQ(readers->size(), 1u);
  EXPECT_EQ((*readers)[0].txn, after);
}

TEST_F(LineageTest, WritersFindsWritersIncludingLoad) {
  LineageTracer tracer(db_.get());
  CorruptRange range = tracer.RecordRange(table_, slots_[6]);
  TxnId w = ReadThenWrite(0, 6);
  auto writers = tracer.Writers(range.off, range.len, 0);
  ASSERT_TRUE(writers.ok());
  // The initial load insert + the update.
  std::set<TxnId> ids;
  for (const auto& a : *writers) {
    EXPECT_TRUE(a.is_write);
    ids.insert(a.txn);
  }
  EXPECT_TRUE(ids.count(w));
  EXPECT_EQ(ids.size(), 2u);
}

TEST_F(LineageTest, TaintClosureFollowsDerivedWrites) {
  Lsn mark = db_->CurrentLsn();
  // Chain: slot2 -> slot4 -> slot5; independent: slot0 -> slot7.
  TxnId hop1 = ReadThenWrite(2, 4);
  TxnId hop2 = ReadThenWrite(4, 5);
  TxnId other = ReadThenWrite(0, 7);

  LineageTracer tracer(db_.get());
  CorruptRange seed = tracer.RecordRange(table_, slots_[2]);
  auto taint = tracer.TaintClosure({seed}, mark);
  ASSERT_TRUE(taint.ok()) << taint.status().ToString();
  EXPECT_TRUE(taint->affected_txns.count(hop1));
  EXPECT_TRUE(taint->affected_txns.count(hop2));
  EXPECT_FALSE(taint->affected_txns.count(other));
  // Slots 4 and 5 are tainted; slot 7 is not.
  EXPECT_TRUE(taint->tainted_data.Overlaps(
      tracer.RecordRange(table_, slots_[4]).off, 1));
  EXPECT_TRUE(taint->tainted_data.Overlaps(
      tracer.RecordRange(table_, slots_[5]).off, 1));
  EXPECT_FALSE(taint->tainted_data.Overlaps(
      tracer.RecordRange(table_, slots_[7]).off, 1));
}

TEST_F(LineageTest, AbortedTransactionsDoNotPropagateTaint) {
  Lsn mark = db_->CurrentLsn();
  // An aborted transaction reads tainted slot2 and writes slot4 — but its
  // write never became visible, so slot4 stays clean.
  auto txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[2], &got));
  ASSERT_OK(db_->Update(*txn, table_, slots_[4], 0, got.substr(0, 8)));
  ASSERT_OK(db_->Abort(*txn));
  TxnId reader_of_4 = ReadThenWrite(4, 6);

  LineageTracer tracer(db_.get());
  CorruptRange seed = tracer.RecordRange(table_, slots_[2]);
  auto taint = tracer.TaintClosure({seed}, mark);
  ASSERT_TRUE(taint.ok());
  EXPECT_FALSE(taint->affected_txns.count(reader_of_4));
  EXPECT_FALSE(taint->tainted_data.Overlaps(
      tracer.RecordRange(table_, slots_[4]).off, 1));
}

TEST_F(LineageTest, ScansAppearInTheAuditTrail) {
  Lsn mark = db_->CurrentLsn();
  auto txn = db_->Begin();
  TxnId scanner = (*txn)->id();
  int visited = 0;
  ASSERT_OK(db_->Scan(*txn, table_, [&](uint32_t, Slice) {
    ++visited;
    return Status::OK();
  }));
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_EQ(visited, 8);

  // Every scanned record shows up as a read by the scanner.
  LineageTracer tracer(db_.get());
  for (int i = 0; i < 8; ++i) {
    CorruptRange r = tracer.RecordRange(table_, slots_[i]);
    auto readers = tracer.Readers(r.off, r.len, mark);
    ASSERT_TRUE(readers.ok());
    bool found = false;
    for (const auto& a : *readers) found = found || a.txn == scanner;
    EXPECT_TRUE(found) << "slot " << i;
  }
}

TEST_F(LineageTest, RequiresReadLoggingScheme) {
  TempDir dir2;
  auto db = Database::Open(
      SmallDbOptions(dir2.path(), ProtectionScheme::kDataCodeword));
  ASSERT_TRUE(db.ok());
  LineageTracer tracer(db->get());
  EXPECT_FALSE(tracer.Readers(0, 100, 0).ok());
  EXPECT_FALSE(tracer.TaintClosure({CorruptRange{0, 100}}, 0).ok());
  // Writers works regardless (writes are always logged).
  EXPECT_TRUE(tracer.Writers(0, 100, 0).ok());
}

TEST_F(LineageTest, ExplicitRecoveryFromLogicalError) {
  // The §7 "logical corruption" scenario: a value is discovered to have
  // been wrong since some known point; no codeword audit ever fails (the
  // bytes were written through the prescribed interface). The operator
  // recovers by declaring the range corrupt from that point.
  Lsn bad_deploy = db_->CurrentLsn();

  // The "buggy release" writes a wrong value into slot 3.
  auto txn = db_->Begin();
  TxnId buggy = (*txn)->id();
  ASSERT_OK(db_->Update(*txn, table_, slots_[3], 0, "WRONGVAL"));
  ASSERT_OK(db_->Commit(*txn));

  // Downstream transactions consume it.
  TxnId victim = ReadThenWrite(3, 6);
  TxnId bystander = ReadThenWrite(0, 7);

  // Audits see nothing (logical corruption, §7: "direct logical corruption
  // cannot be efficiently detected").
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);

  LineageTracer tracer(db_.get());
  CorruptRange bad = tracer.RecordRange(table_, slots_[3]);
  ASSERT_OK(db_->RecoverFromCorruption({bad}, bad_deploy));

  const auto& deleted = db_->last_recovery_report().deleted_txns;
  std::set<TxnId> del(deleted.begin(), deleted.end());
  EXPECT_TRUE(del.count(buggy));
  EXPECT_TRUE(del.count(victim));
  EXPECT_FALSE(del.count(bystander));

  // slot3 and slot6 back to pre-deploy values.
  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[3], &got));
  EXPECT_EQ(got, std::string(128, '3'));
  ASSERT_OK(db_->Read(*txn, table_, slots_[6], &got));
  EXPECT_EQ(got, std::string(128, '6'));
  ASSERT_OK(db_->Read(*txn, table_, slots_[7], &got));
  EXPECT_EQ(got.substr(0, 8), std::string(8, '0'));  // Bystander kept.
  ASSERT_OK(db_->Commit(*txn));
}

}  // namespace
}  // namespace cwdb
