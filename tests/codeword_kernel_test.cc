// Kernel-equivalence property tests: every codeword kernel tier (wide64,
// SSE2, AVX2) must be bit-identical to the scalar reference for random
// buffers, lengths, lane offsets and pointer misalignments — including the
// zero-padded tail and the unaligned-lane head/tail cases of CodewordFold.
// The dispatched public entry points are also pinned to each tier in turn
// (CodewordKernelSetTier) to prove the scalar path stays selectable at
// runtime for verification.

#include "common/codeword_kernel.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/codeword.h"
#include "common/random.h"

namespace cwdb {
namespace {

constexpr CodewordKernelTier kAllTiers[] = {
    CodewordKernelTier::kScalar, CodewordKernelTier::kWide64,
    CodewordKernelTier::kSSE2, CodewordKernelTier::kAVX2};

std::vector<CodewordKernelTier> SupportedTiers() {
  std::vector<CodewordKernelTier> tiers;
  for (CodewordKernelTier t : kAllTiers) {
    if (CodewordKernelSupported(t)) tiers.push_back(t);
  }
  return tiers;
}

/// Restores the dispatched tier after a test pins it.
class TierRestorer {
 public:
  TierRestorer() : saved_(CodewordKernelActiveTier()) {}
  ~TierRestorer() { CodewordKernelSetTier(saved_); }

 private:
  CodewordKernelTier saved_;
};

TEST(CodewordKernel, ScalarAlwaysSupported) {
  EXPECT_TRUE(CodewordKernelSupported(CodewordKernelTier::kScalar));
  // The best tier must itself be supported (whatever it is here).
  EXPECT_TRUE(CodewordKernelSupported(CodewordKernelBestTier()));
}

TEST(CodewordKernel, TierNamesAreStable) {
  EXPECT_STREQ(CodewordKernelTierName(CodewordKernelTier::kScalar), "scalar");
  EXPECT_STREQ(CodewordKernelTierName(CodewordKernelTier::kWide64), "wide64");
  EXPECT_STREQ(CodewordKernelTierName(CodewordKernelTier::kSSE2), "sse2");
  EXPECT_STREQ(CodewordKernelTierName(CodewordKernelTier::kAVX2), "avx2");
}

TEST(CodewordKernel, ComputeMatchesScalarOnRandomBuffers) {
  auto tiers = SupportedTiers();
  Random rng(0xC0DE30BD);
  // Lengths chosen to cross every unroll boundary: empty, sub-word, the
  // scalar/wide/SSE2/AVX2 block sizes +/- straddle, and large regions.
  const size_t lengths[] = {0,  1,  2,  3,   4,   5,   7,   8,    9,
                            15, 16, 17, 31,  32,  33,  63,  64,   65,
                            96, 127, 128, 129, 511, 512, 513, 8192, 65537};
  for (size_t len : lengths) {
    std::vector<uint8_t> buf(len + 64);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next32());
    // Sweep pointer misalignment too: wide kernels must not assume their
    // loads are naturally aligned.
    for (size_t mis : {0u, 1u, 3u, 7u, 13u}) {
      const uint8_t* p = buf.data() + mis;
      codeword_t want = CodewordComputeTier(CodewordKernelTier::kScalar, p, len);
      for (CodewordKernelTier t : tiers) {
        EXPECT_EQ(CodewordComputeTier(t, p, len), want)
            << "tier " << CodewordKernelTierName(t) << " len " << len
            << " misalign " << mis;
      }
    }
  }
}

TEST(CodewordKernel, FoldMatchesScalarForAllLaneOffsets) {
  auto tiers = SupportedTiers();
  Random rng(0xF01D);
  const size_t lengths[] = {0, 1, 2, 3, 4, 5, 8, 13, 16, 31, 32, 33,
                            64, 100, 129, 512, 1000, 8191};
  for (size_t len : lengths) {
    std::vector<uint8_t> buf(len + 16);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next32());
    for (size_t lane_offset = 0; lane_offset < 8; ++lane_offset) {
      for (size_t mis : {0u, 1u, 5u}) {
        const uint8_t* p = buf.data() + mis;
        codeword_t want = CodewordFoldTier(CodewordKernelTier::kScalar,
                                           lane_offset, p, len);
        for (CodewordKernelTier t : tiers) {
          EXPECT_EQ(CodewordFoldTier(t, lane_offset, p, len), want)
              << "tier " << CodewordKernelTierName(t) << " len " << len
              << " lane_offset " << lane_offset << " misalign " << mis;
        }
      }
    }
  }
}

TEST(CodewordKernel, RandomizedLengthsAndOffsets) {
  auto tiers = SupportedTiers();
  Random rng(42);
  std::vector<uint8_t> buf(1 << 16);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next32());
  for (int iter = 0; iter < 2000; ++iter) {
    size_t len = rng.Next32() % 700;
    size_t start = rng.Next32() % (buf.size() - len);
    size_t lane_offset = rng.Next32() % 8;
    codeword_t want_c = CodewordComputeTier(CodewordKernelTier::kScalar,
                                            buf.data() + start, len);
    codeword_t want_f = CodewordFoldTier(CodewordKernelTier::kScalar,
                                         lane_offset, buf.data() + start, len);
    for (CodewordKernelTier t : tiers) {
      ASSERT_EQ(CodewordComputeTier(t, buf.data() + start, len), want_c)
          << CodewordKernelTierName(t) << " iter " << iter;
      ASSERT_EQ(CodewordFoldTier(t, lane_offset, buf.data() + start, len),
                want_f)
          << CodewordKernelTierName(t) << " iter " << iter;
    }
  }
}

TEST(CodewordKernel, ZeroPaddedTailEquivalence) {
  // A buffer whose length is not a multiple of 4 folds exactly like the
  // same buffer zero-padded to the next word boundary — in every tier.
  Random rng(7);
  for (size_t len : {1u, 2u, 3u, 5u, 6u, 7u, 30u, 61u, 121u, 510u}) {
    std::vector<uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next32());
    std::vector<uint8_t> padded(buf);
    padded.resize((len + 3) & ~size_t{3}, 0);
    for (CodewordKernelTier t : SupportedTiers()) {
      EXPECT_EQ(CodewordComputeTier(t, buf.data(), len),
                CodewordComputeTier(t, padded.data(), padded.size()))
          << CodewordKernelTierName(t) << " len " << len;
    }
  }
}

TEST(CodewordKernel, DispatchedEntryPointsHonorPinnedTier) {
  TierRestorer restore;
  Random rng(99);
  std::vector<uint8_t> before(777), after(777);
  for (auto& b : before) b = static_cast<uint8_t>(rng.Next32());
  for (auto& b : after) b = static_cast<uint8_t>(rng.Next32());

  // Values through the public API must not depend on the pinned tier.
  CodewordKernelSetTier(CodewordKernelTier::kScalar);
  codeword_t want_compute = CodewordCompute(before.data(), before.size());
  codeword_t want_fold = CodewordFold(3, before.data(), before.size());
  codeword_t want_delta =
      CodewordDelta(2, before.data(), after.data(), before.size());

  for (CodewordKernelTier t : SupportedTiers()) {
    ASSERT_TRUE(CodewordKernelSetTier(t));
    EXPECT_EQ(CodewordKernelActiveTier(), t);
    EXPECT_EQ(CodewordCompute(before.data(), before.size()), want_compute)
        << CodewordKernelTierName(t);
    EXPECT_EQ(CodewordFold(3, before.data(), before.size()), want_fold)
        << CodewordKernelTierName(t);
    EXPECT_EQ(CodewordDelta(2, before.data(), after.data(), before.size()),
              want_delta)
        << CodewordKernelTierName(t);
  }
}

TEST(CodewordKernel, SetTierRejectsUnsupported) {
  TierRestorer restore;
  CodewordKernelTier active = CodewordKernelActiveTier();
  for (CodewordKernelTier t : kAllTiers) {
    if (!CodewordKernelSupported(t)) {
      EXPECT_FALSE(CodewordKernelSetTier(t));
      // A rejected request leaves dispatch untouched.
      EXPECT_EQ(CodewordKernelActiveTier(), active);
    }
  }
}

}  // namespace
}  // namespace cwdb
