// Tests of the delete-transaction corruption recovery model (paper §4.1 /
// §4.3): tracing indirect corruption through read log records, deleting the
// affected transactions from history, conflict cascades, the
// codeword-read-log extension (view-consistency; recovery on every
// restart), and conflict-consistency of the resulting delete history.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "core/database.h"
#include "faultinject/fault_injector.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

// Record size == region size so each record occupies exactly one
// protection region; corruption granularity then maps 1:1 to records and
// the scenarios below stay surgical.
constexpr uint32_t kRec = 128;

class CorruptionRecoveryTest
    : public ::testing::TestWithParam<ProtectionScheme> {
 protected:
  void Open() {
    auto db = Database::Open(SmallDbOptions(dir_.path(), GetParam(), kRec));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  // Creates a table of 8 records r0..r7, each filled with its index
  // character, commits and checkpoints (certified clean).
  void SetupRecords() {
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", kRec, 64);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    for (int i = 0; i < 8; ++i) {
      auto rid = db_->Insert(*txn, table_, std::string(kRec, '0' + i));
      ASSERT_TRUE(rid.ok());
      slots_[i] = rid->slot;
    }
    ASSERT_OK(db_->Commit(*txn));
    ASSERT_OK(db_->Checkpoint());
  }

  std::string ReadRecordCommitted(int i) {
    auto txn = db_->Begin();
    std::string got;
    Status s = db_->Read(*txn, table_, slots_[i], &got);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_TRUE(db_->Commit(*txn).ok());
    return got;
  }

  // One transaction: read record `src`, then write the value read (or a
  // constant) into the front of record `dst`. Returns its txn id.
  TxnId ReadThenWrite(int src, int dst, const std::string& tag) {
    auto txn = db_->Begin();
    EXPECT_TRUE(txn.ok());
    TxnId id = (*txn)->id();
    std::string got;
    EXPECT_OK(db_->Read(*txn, table_, slots_[src], &got));
    // Derive the written value from the read (carrying corruption).
    std::string out = tag + got.substr(0, 8);
    EXPECT_OK(db_->Update(*txn, table_, slots_[dst], 0, out));
    EXPECT_OK(db_->Commit(*txn));
    return id;
  }

  void Corrupt(int i, const std::string& garbage) {
    FaultInjector inject(db_.get(), 17);
    DbPtr off = db_->image()->RecordOff(table_, slots_[i]);
    auto outcome = inject.WildWriteAt(off, garbage);
    ASSERT_FALSE(outcome.prevented);
    ASSERT_TRUE(outcome.changed_bits);
  }

  // Audit (expected to fail), then crash + corruption recovery.
  void DetectAndRecover() {
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok());
    ASSERT_FALSE(report->clean) << "audit should have caught the wild write";
    ASSERT_OK(db_->CrashAndRecover());
  }

  bool WasDeleted(TxnId id) {
    const auto& deleted = db_->last_recovery_report().deleted_txns;
    return std::find(deleted.begin(), deleted.end(), id) != deleted.end();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
  uint32_t slots_[8] = {};
};

TEST_P(CorruptionRecoveryTest, ReaderOfCorruptDataIsDeleted) {
  Open();
  SetupRecords();

  TxnId clean_before = ReadThenWrite(0, 4, "CB");  // Clean: runs pre-corruption.
  Corrupt(1, "WILDWILDWILD");
  TxnId carrier = ReadThenWrite(1, 5, "XX");   // Reads corrupt r1, writes r5.
  TxnId clean_after = ReadThenWrite(0, 6, "CA");  // Touches neither.

  DetectAndRecover();

  EXPECT_FALSE(WasDeleted(clean_before));
  EXPECT_TRUE(WasDeleted(carrier));
  EXPECT_FALSE(WasDeleted(clean_after));

  // r1: direct corruption is gone (image rebuilt from certified checkpoint
  // + clean redo).
  EXPECT_EQ(ReadRecordCommitted(1), std::string(kRec, '1'));
  // r5: the carrier's write was removed from history.
  EXPECT_EQ(ReadRecordCommitted(5), std::string(kRec, '5'));
  // r4, r6: clean writes survive.
  EXPECT_EQ(ReadRecordCommitted(4).substr(0, 2), "CB");
  EXPECT_EQ(ReadRecordCommitted(6).substr(0, 2), "CA");
  // Post-recovery database is clean.
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST_P(CorruptionRecoveryTest, IndirectCorruptionPropagatesTransitively) {
  Open();
  SetupRecords();

  Corrupt(1, "GARBAGE");
  TxnId t2 = ReadThenWrite(1, 2, "XX");  // Carries corruption r1 -> r2.
  TxnId t3 = ReadThenWrite(2, 3, "YY");  // Carries r2 -> r3.
  TxnId t4 = ReadThenWrite(0, 7, "ZZ");  // Clean.

  DetectAndRecover();

  EXPECT_TRUE(WasDeleted(t2));
  EXPECT_TRUE(WasDeleted(t3));
  EXPECT_FALSE(WasDeleted(t4));
  EXPECT_EQ(ReadRecordCommitted(2), std::string(kRec, '2'));
  EXPECT_EQ(ReadRecordCommitted(3), std::string(kRec, '3'));
  EXPECT_EQ(ReadRecordCommitted(7).substr(0, 2), "ZZ");
}

TEST_P(CorruptionRecoveryTest, ConflictingOperationCascades) {
  Open();
  SetupRecords();

  Corrupt(1, "BADBYTES");

  // t_a writes r6 BEFORE reading corrupt r1: its undo log has a logical
  // entry for r6 when it becomes corrupt.
  auto txn = db_->Begin();
  TxnId t_a = (*txn)->id();
  ASSERT_OK(db_->Update(*txn, table_, slots_[6], 0, "AAAA"));
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[1], &got));  // Poison.
  ASSERT_OK(db_->Update(*txn, table_, slots_[7], 0, "AFTER"));
  ASSERT_OK(db_->Commit(*txn));

  // t_b then operates on r6 — conflicting with t_a's undo. To roll t_a
  // back, t_b must be deleted as well (§4.3 begin-op conflict rule).
  TxnId t_b = ReadThenWrite(0, 6, "BB");

  DetectAndRecover();

  EXPECT_TRUE(WasDeleted(t_a));
  EXPECT_TRUE(WasDeleted(t_b));
  // r6 and r7 back to their pre-t_a values.
  EXPECT_EQ(ReadRecordCommitted(6), std::string(kRec, '6'));
  EXPECT_EQ(ReadRecordCommitted(7), std::string(kRec, '7'));
}

TEST_P(CorruptionRecoveryTest, DataWrittenBeforeCorruptReadIsAlsoRemoved) {
  // A deleted transaction is deleted *entirely*: even writes that happened
  // before it read corrupt data are rolled back (the delete-history
  // removes all of its reads and writes).
  Open();
  SetupRecords();

  Corrupt(1, "NASTY");
  auto txn = db_->Begin();
  TxnId id = (*txn)->id();
  ASSERT_OK(db_->Update(*txn, table_, slots_[4], 0, "EARLY"));
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[1], &got));
  ASSERT_OK(db_->Commit(*txn));

  DetectAndRecover();
  EXPECT_TRUE(WasDeleted(id));
  EXPECT_EQ(ReadRecordCommitted(4), std::string(kRec, '4'));
}

TEST_P(CorruptionRecoveryTest, UncorruptedHistoryAllSurvives) {
  // Corruption in a region nobody reads: no transaction is deleted.
  Open();
  SetupRecords();
  TxnId t1 = ReadThenWrite(0, 4, "T1");
  Corrupt(7, "LONELY");
  TxnId t2 = ReadThenWrite(0, 5, "T2");

  DetectAndRecover();
  EXPECT_FALSE(WasDeleted(t1));
  EXPECT_FALSE(WasDeleted(t2));
  EXPECT_TRUE(db_->last_recovery_report().deleted_txns.empty());
  EXPECT_EQ(ReadRecordCommitted(7), std::string(kRec, '7'));
  EXPECT_EQ(ReadRecordCommitted(4).substr(0, 2), "T1");
  EXPECT_EQ(ReadRecordCommitted(5).substr(0, 2), "T2");
}

TEST_P(CorruptionRecoveryTest, NoteSurvivesProcessDeathAndDrivesNextOpen) {
  // The "cause the database to crash" path end-to-end across a real
  // process boundary: the audit notes the corruption durably, the process
  // dies without running recovery, and the *next open* runs the
  // delete-transaction algorithm from the note.
  Open();
  SetupRecords();
  Corrupt(1, "PERSIST");
  TxnId carrier = ReadThenWrite(1, 5, "XX");

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  // Destroy without recovering — like a process kill after the note.
  db_.reset();

  auto reopened =
      Database::Open(SmallDbOptions(dir_.path(), GetParam(), kRec));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  db_ = std::move(reopened).value();
  EXPECT_TRUE(WasDeleted(carrier));
  EXPECT_EQ(ReadRecordCommitted(5), std::string(kRec, '5'));
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST_P(CorruptionRecoveryTest, RecoveryIsStable) {
  // A second crash right after corruption recovery must not rediscover the
  // corruption (the final checkpoint guarantees this, §4.3).
  Open();
  SetupRecords();
  Corrupt(1, "ZOMBIE");
  TxnId carrier = ReadThenWrite(1, 5, "XX");
  DetectAndRecover();
  ASSERT_TRUE(WasDeleted(carrier));

  TxnId after = ReadThenWrite(0, 6, "OK");
  ASSERT_OK(db_->CrashAndRecover());
  EXPECT_FALSE(WasDeleted(after));
  EXPECT_TRUE(db_->last_recovery_report().deleted_txns.empty());
  EXPECT_EQ(ReadRecordCommitted(6).substr(0, 2), "OK");
}

INSTANTIATE_TEST_SUITE_P(Schemes, CorruptionRecoveryTest,
                         ::testing::Values(ProtectionScheme::kReadLog,
                                           ProtectionScheme::kCodewordReadLog),
                         [](const auto& info) {
                           return info.param == ProtectionScheme::kReadLog
                                      ? std::string("ReadLog")
                                      : std::string("CWReadLog");
                         });

// ---------- Codeword Read Logging extension specifics ----------

class CwReadLogTest : public ::testing::Test {
 protected:
  void Open() {
    auto db = Database::Open(SmallDbOptions(
        dir_.path(), ProtectionScheme::kCodewordReadLog, kRec));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }
  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(CwReadLogTest, DetectsCorruptionOnPlainRestartWithoutAudit) {
  // §4.3 Extension: with codewords in read log records, corruption that was
  // never caught by an audit is still detected at the next restart, because
  // the logged checksums disagree with the recovered image.
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", kRec, 16);
  ASSERT_TRUE(t.ok());
  auto r1 = db_->Insert(*txn, *t, std::string(kRec, 'a'));
  auto r2 = db_->Insert(*txn, *t, std::string(kRec, 'b'));
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());

  FaultInjector inject(db_.get(), 23);
  inject.WildWriteAt(db_->image()->RecordOff(*t, r1->slot), "SILENT");

  // A transaction reads the corrupted record and writes another — no audit
  // runs, then the process dies.
  txn = db_->Begin();
  TxnId carrier = (*txn)->id();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *t, r1->slot, &got));
  ASSERT_OK(db_->Update(*txn, *t, r2->slot, 0, got.substr(0, 8)));
  ASSERT_OK(db_->Commit(*txn));

  ASSERT_OK(db_->CrashAndRecover());  // Plain crash, no corrupt.note.

  const auto& deleted = db_->last_recovery_report().deleted_txns;
  EXPECT_NE(std::find(deleted.begin(), deleted.end(), carrier),
            deleted.end());
  txn = db_->Begin();
  ASSERT_OK(db_->Read(*txn, *t, r2->slot, &got));
  EXPECT_EQ(got, std::string(kRec, 'b'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(CwReadLogTest, ViewConsistencySparesHarmlessReaders) {
  // A transaction is deleted; a later reader of data it wrote is spared if
  // the deleted write had the same value the reader would see in the
  // delete history (view-consistent recovery, §4.3).
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", kRec, 16);
  ASSERT_TRUE(t.ok());
  auto bad = db_->Insert(*txn, *t, std::string(kRec, 'x'));
  auto same = db_->Insert(*txn, *t, std::string(kRec, 's'));
  auto out = db_->Insert(*txn, *t, std::string(kRec, 'o'));
  ASSERT_TRUE(bad.ok() && same.ok() && out.ok());
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());

  FaultInjector inject(db_.get(), 31);
  inject.WildWriteAt(db_->image()->RecordOff(*t, bad->slot), "POOF");

  // Carrier reads the corrupt record, then overwrites `same` with the
  // value it ALREADY HAS ('ssss...'): deleted, but harmless.
  txn = db_->Begin();
  TxnId carrier = (*txn)->id();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *t, bad->slot, &got));
  ASSERT_OK(db_->Update(*txn, *t, same->slot, 0, std::string(8, 's')));
  ASSERT_OK(db_->Commit(*txn));

  // Reader reads `same` (value identical with or without the carrier) and
  // writes `out`.
  TxnId reader;
  {
    auto txn2 = db_->Begin();
    reader = (*txn2)->id();
    ASSERT_OK(db_->Read(*txn2, *t, same->slot, &got));
    ASSERT_OK(db_->Update(*txn2, *t, out->slot, 0, got.substr(0, 4)));
    ASSERT_OK(db_->Commit(*txn2));
  }

  ASSERT_OK(db_->CrashAndRecover());
  const auto& deleted = db_->last_recovery_report().deleted_txns;
  EXPECT_NE(std::find(deleted.begin(), deleted.end(), carrier),
            deleted.end());
  // View-consistency: the reader saw the same bytes either way — spared.
  EXPECT_EQ(std::find(deleted.begin(), deleted.end(), reader), deleted.end());
  txn = db_->Begin();
  ASSERT_OK(db_->Read(*txn, *t, out->slot, &got));
  EXPECT_EQ(got.substr(0, 4), "ssss");
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(CwReadLogTest, PlainReadLogDeletesHarmlessReaderButCwSpares) {
  // Differential companion to the view-consistency test: under plain
  // ReadLog the CorruptDataTable is byte-range based, so the same scenario
  // deletes the reader too (conflict-consistent, coarser).
  TempDir dir2;
  auto db = Database::Open(
      SmallDbOptions(dir2.path(), ProtectionScheme::kReadLog, kRec));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", kRec, 16);
  ASSERT_TRUE(t.ok());
  auto bad = (*db)->Insert(*txn, *t, std::string(kRec, 'x'));
  auto same = (*db)->Insert(*txn, *t, std::string(kRec, 's'));
  auto out = (*db)->Insert(*txn, *t, std::string(kRec, 'o'));
  ASSERT_TRUE(bad.ok() && same.ok() && out.ok());
  ASSERT_OK((*db)->Commit(*txn));
  ASSERT_OK((*db)->Checkpoint());

  FaultInjector inject(db->get(), 31);
  inject.WildWriteAt((*db)->image()->RecordOff(*t, bad->slot), "POOF");

  txn = (*db)->Begin();
  std::string got;
  ASSERT_OK((*db)->Read(*txn, *t, bad->slot, &got));
  ASSERT_OK((*db)->Update(*txn, *t, same->slot, 0, std::string(8, 's')));
  ASSERT_OK((*db)->Commit(*txn));

  TxnId reader;
  {
    auto txn2 = (*db)->Begin();
    reader = (*txn2)->id();
    ASSERT_OK((*db)->Read(*txn2, *t, same->slot, &got));
    ASSERT_OK((*db)->Update(*txn2, *t, out->slot, 0, got.substr(0, 4)));
    ASSERT_OK((*db)->Commit(*txn2));
  }

  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  ASSERT_OK((*db)->CrashAndRecover());
  const auto& deleted = (*db)->last_recovery_report().deleted_txns;
  EXPECT_NE(std::find(deleted.begin(), deleted.end(), reader), deleted.end())
      << "plain ReadLog is conflict-consistent: byte overlap deletes";
}

}  // namespace
}  // namespace cwdb
