// End-to-end tests of the crash-surviving flight recorder: a process dying
// at an armed crash point, by SIGKILL-style _exit, or on a genuine SIGSEGV
// must leave a decodable blackbox.bin; the next open must rotate it and
// file an IncidentSource::kCrash dossier; a clean Close must not. Also the
// regression test for the fault injector's ScopedTrap chaining (a scoped
// trap must not eat the global fatal handler).

#include <csignal>
#include <cstring>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "common/crashpoint.h"
#include "common/file_util.h"
#include "faultinject/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/forensics.h"
#include "obs/postmortem.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

/// One committed transaction so the child generates WAL flushes, trace
/// events and staged-LSN mirror traffic before it dies.
TableId CommitOneTxn(Database* db) {
  Result<Transaction*> txn = db->Begin();
  EXPECT_TRUE(txn.ok());
  Result<TableId> table = db->CreateTable(*txn, "t", 64, 128);
  EXPECT_TRUE(table.ok());
  EXPECT_TRUE(db->Insert(*txn, *table, std::string(64, 'x')).ok());
  EXPECT_TRUE(db->Commit(*txn).ok());
  return *table;
}

/// Forks `child`, waits, and returns the raw wait status.
template <typename Fn>
int ForkAndWait(Fn child) {
  pid_t pid = ::fork();
  if (pid == 0) {
    child();
    ::_exit(0);
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return status;
}

TEST(Postmortem, CrashAtArmedPointLeavesDecodableBox) {
  TempDir dir;
  DatabaseOptions opts = SmallDbOptions(dir.path(), ProtectionScheme::kNone);

  int status = ForkAndWait([&] {
    Result<std::unique_ptr<Database>> db = Database::Open(opts);
    if (!db.ok()) ::_exit(3);
    crashpoint::Spec spec;
    spec.mode = crashpoint::Mode::kAbort;
    crashpoint::Arm("wal.flush.fdatasync", spec);
    CommitOneTxn(db->get());
    ::_exit(4);  // The point should have fired inside Commit.
  });
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), crashpoint::kCrashExitCode);

  // The dead child's box: decodable, unclean, with the armed point and the
  // child's WAL frontiers mirrored.
  DbFiles files(dir.path());
  Result<BlackBoxReport> box = ReadBlackBox(files.BlackBox());
  ASSERT_TRUE(box.ok()) << box.status().ToString();
  EXPECT_FALSE(box->clean_shutdown);
  EXPECT_NE(box->armed_crashpoints.find("wal.flush.fdatasync"),
            std::string::npos)
      << "armed: " << box->armed_crashpoints;
  EXPECT_FALSE(box->crash.valid);  // _exit, not a fatal signal.
  EXPECT_EQ(box->arena_size, opts.arena_size);
  EXPECT_EQ(box->scheme, std::string(ProtectionSchemeName(
                             ProtectionScheme::kNone)));
  EXPECT_FALSE(box->events.empty());
  std::string rendered = RenderBlackBox(*box);
  EXPECT_NE(rendered.find("UNCLEAN"), std::string::npos);

  // Reopen: the box is rotated and a crash dossier filed.
  Result<std::unique_ptr<Database>> db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_NE((*db)->crash_incident_id(), 0u);
  ASSERT_NE((*db)->prior_blackbox(), nullptr);
  EXPECT_FALSE((*db)->prior_blackbox()->clean_shutdown);
  EXPECT_TRUE(FileExists(files.BlackBoxPrev()));
  EXPECT_TRUE(FileExists(files.BlackBox()));  // The new incarnation's box.
  ASSERT_OK((*db)->Close());
}

TEST(Postmortem, KilledChildWithoutSignalRecordStillFilesDossier) {
  TempDir dir;
  DatabaseOptions opts = SmallDbOptions(dir.path(), ProtectionScheme::kNone);

  int status = ForkAndWait([&] {
    Result<std::unique_ptr<Database>> db = Database::Open(opts);
    if (!db.ok()) ::_exit(3);
    CommitOneTxn(db->get());
    ::_exit(5);  // Unclean death with no crash point and no signal.
  });
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 5);

  Result<std::unique_ptr<Database>> db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_NE((*db)->crash_incident_id(), 0u);
  ASSERT_NE((*db)->prior_blackbox(), nullptr);
  EXPECT_FALSE((*db)->prior_blackbox()->crash.valid);
  // The committed transaction survived alongside the dossier.
  EXPECT_TRUE((*db)->FindTable("t").ok());
  ASSERT_OK((*db)->Close());
}

TEST(Postmortem, GenuineSegvIsRecordedWithArenaAttribution) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kHardware);
  opts.flight_recorder.install_fatal_handler = true;

  int status = ForkAndWait([&] {
    Result<std::unique_ptr<Database>> db = Database::Open(opts);
    if (!db.ok()) ::_exit(3);
    TableId table = CommitOneTxn(db->get());
    // A wild store straight into the protected image — the paper's
    // addressing error. Hardware protection faults it; the fatal handler
    // records the crash and chains to the default disposition.
    DbPtr off = (*db)->image()->RecordOff(table, 0);
    (*db)->UnsafeRawBase()[off] = 0xAA;
    ::_exit(6);  // Unreachable when the scheme protects the page.
  });
  // Plain builds die by the re-raised SIGSEGV; sanitizer builds may turn
  // it into a nonzero exit after their own report. Either way the child
  // must not have reached the post-store exit.
  if (WIFEXITED(status)) {
    EXPECT_NE(WEXITSTATUS(status), 6);
    EXPECT_NE(WEXITSTATUS(status), 0);
  } else {
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  }

  DbFiles files(dir.path());
  Result<BlackBoxReport> box = ReadBlackBox(files.BlackBox());
  ASSERT_TRUE(box.ok()) << box.status().ToString();
  EXPECT_FALSE(box->clean_shutdown);
  ASSERT_TRUE(box->crash.valid);
  EXPECT_EQ(box->crash.signal, SIGSEGV);
  EXPECT_TRUE(box->crash.fault_in_arena);
  EXPECT_LT(box->crash.fault_off, opts.arena_size);

  // Reopen: the dossier carries the fault's arena attribution.
  Result<std::unique_ptr<Database>> db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_NE((*db)->crash_incident_id(), 0u);
  ASSERT_NE((*db)->prior_blackbox(), nullptr);
  EXPECT_TRUE((*db)->prior_blackbox()->crash.fault_in_arena);
  ASSERT_OK((*db)->Close());
}

TEST(Postmortem, ScopedTrapChainsInsteadOfEatingTheFatalHandler) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kHardware);
  opts.flight_recorder.install_fatal_handler = true;
  Result<std::unique_ptr<Database>> db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(FlightRecorder::FatalHandlerInstalled());

  struct sigaction before;
  ASSERT_EQ(::sigaction(SIGSEGV, nullptr, &before), 0);

  // An injected wild write under the hardware scheme: the scoped trap must
  // claim the fault in its own page window (prevented), then restore the
  // flight recorder's handler — not leave SIG_DFL or itself behind.
  FaultInjector injector(db->get(), /*seed=*/1);
  FaultInjector::Outcome out = injector.WildWriteAt(
      (*db)->arena_size() / 2, Slice("zz", 2));
  EXPECT_TRUE(out.prevented);
  EXPECT_FALSE(out.changed_bits);

  struct sigaction after;
  ASSERT_EQ(::sigaction(SIGSEGV, nullptr, &after), 0);
  EXPECT_EQ(before.sa_sigaction, after.sa_sigaction);
  EXPECT_TRUE(FlightRecorder::FatalHandlerInstalled());
  ASSERT_OK((*db)->Close());
}

TEST(Postmortem, CleanCloseMarksTheBoxAndFilesNoDossier) {
  TempDir dir;
  DatabaseOptions opts = SmallDbOptions(dir.path(), ProtectionScheme::kNone);
  {
    Result<std::unique_ptr<Database>> db = Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    CommitOneTxn(db->get());
    ASSERT_OK((*db)->Close());
  }
  DbFiles files(dir.path());
  Result<BlackBoxReport> box = ReadBlackBox(files.BlackBox());
  ASSERT_TRUE(box.ok()) << box.status().ToString();
  EXPECT_TRUE(box->clean_shutdown);

  Result<std::unique_ptr<Database>> db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->crash_incident_id(), 0u);
  EXPECT_EQ((*db)->prior_blackbox(), nullptr);
  EXPECT_FALSE(FileExists(files.BlackBoxPrev()));
  ASSERT_OK((*db)->Close());
}

TEST(Postmortem, GarbageBlackBoxIsToleratedAtOpen) {
  TempDir dir;
  DatabaseOptions opts = SmallDbOptions(dir.path(), ProtectionScheme::kNone);
  {
    Result<std::unique_ptr<Database>> db = Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_OK((*db)->Close());
  }
  DbFiles files(dir.path());
  ASSERT_OK(WriteFileAtomic(files.BlackBox(),
                            std::string(1000, '\xff') + "not a black box"));

  // A box that does not decode is not evidence of anything: the open
  // replaces it and files nothing.
  Result<std::unique_ptr<Database>> db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->crash_incident_id(), 0u);
  EXPECT_EQ((*db)->prior_blackbox(), nullptr);
  Result<BlackBoxReport> box = ReadBlackBox(files.BlackBox());
  EXPECT_TRUE(box.ok()) << box.status().ToString();
  ASSERT_OK((*db)->Close());
}

TEST(Postmortem, DecoderRejectsNonBoxes) {
  EXPECT_TRUE(DecodeBlackBox("").status().IsCorruption());
  EXPECT_TRUE(DecodeBlackBox("CWBBOX01").status().IsCorruption());
  std::string wrong(blackbox::kTotalBytes, '\0');
  EXPECT_TRUE(DecodeBlackBox(wrong).status().IsCorruption());
}

}  // namespace
}  // namespace cwdb
