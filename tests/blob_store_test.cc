// Tests of the contiguous large-object store: allocation/free-list
// behaviour, page-spanning objects accessed without reassembly, atomic
// rollback of allocator surgery, crash recovery, heap integrity checking,
// and corruption detection/tracing through blob reads.

#include "blob/blob_store.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "faultinject/fault_injector.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

class BlobStoreTest : public ::testing::Test {
 protected:
  void Open(ProtectionScheme scheme = ProtectionScheme::kDataCodeword) {
    auto db = Database::Open(SmallDbOptions(dir_.path(), scheme, 512));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto store = BlobStore::Create(db_.get(), *txn, "blobs", 256 << 10);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::make_unique<BlobStore>(std::move(store).value());
    ASSERT_OK(db_->Commit(*txn));
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<BlobStore> store_;
};

TEST_F(BlobStoreTest, AllocWriteReadFreeRoundTrip) {
  Open();
  auto txn = db_->Begin();
  auto blob = store_->Alloc(*txn, 1000);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  std::string data(1000, 'b');
  ASSERT_OK(store_->Write(*txn, *blob, 0, data));
  std::string got(1000, '\0');
  ASSERT_OK(store_->Read(*txn, *blob, 0, 1000, got.data()));
  EXPECT_EQ(got, data);
  auto size = store_->SizeOf(*blob);
  ASSERT_TRUE(size.ok());
  EXPECT_GE(*size, 1000u);
  ASSERT_OK(store_->Free(*txn, *blob));
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_TRUE(store_->CheckHeap().ok());
}

TEST_F(BlobStoreTest, ObjectLargerThanPageIsContiguous) {
  // The §2 claim: objects larger than a page live contiguously and are
  // readable directly, no reassembly.
  Open();
  auto txn = db_->Begin();
  const uint64_t size = 3 * 4096 + 500;  // Spans 4 OS pages.
  auto blob = store_->Alloc(*txn, size);
  ASSERT_TRUE(blob.ok());
  std::string data(size, '\0');
  Random rng(1);
  for (auto& c : data) c = static_cast<char>(rng.Next32());
  ASSERT_OK(store_->Write(*txn, *blob, 0, data));
  ASSERT_OK(db_->Commit(*txn));

  // Direct pointer access — the mapped bytes ARE the object.
  EXPECT_EQ(std::memcmp(db_->image()->At(*blob), data.data(), size), 0);
  // And codewords stayed consistent across every covered region.
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST_F(BlobStoreTest, SplitAndReuse) {
  Open();
  auto txn = db_->Begin();
  auto a = store_->Alloc(*txn, 100);
  auto b = store_->Alloc(*txn, 200);
  auto c = store_->Alloc(*txn, 300);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  // Distinct, non-overlapping allocations.
  EXPECT_NE(*a, *b);
  EXPECT_NE(*b, *c);
  ASSERT_OK(store_->Free(*txn, *b));
  // The freed block is recycled for a fitting request.
  auto d = store_->Alloc(*txn, 150);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, *b);
  ASSERT_OK(db_->Commit(*txn));
  auto free_blocks = store_->CheckHeap();
  ASSERT_TRUE(free_blocks.ok());
}

TEST_F(BlobStoreTest, ExhaustionReturnsNoSpace) {
  Open();
  auto txn = db_->Begin();
  auto big = store_->Alloc(*txn, 200 << 10);
  ASSERT_TRUE(big.ok());
  auto too_big = store_->Alloc(*txn, 100 << 10);
  EXPECT_EQ(too_big.status().code(), Status::Code::kNoSpace);
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(BlobStoreTest, BoundsChecked) {
  Open();
  auto txn = db_->Begin();
  auto blob = store_->Alloc(*txn, 64);
  ASSERT_TRUE(blob.ok());
  EXPECT_FALSE(store_->Write(*txn, *blob, 60, "12345678").ok());
  char buf[8];
  EXPECT_FALSE(store_->Read(*txn, *blob, 60, 8, buf).ok());
  EXPECT_FALSE(store_->Alloc(*txn, 0).ok());
  // Freeing a non-blob offset is refused, not corrupting.
  EXPECT_FALSE(store_->Free(*txn, *blob + 8).ok());
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(BlobStoreTest, AbortRestoresAllocatorExactly) {
  Open();
  auto txn = db_->Begin();
  auto keep = store_->Alloc(*txn, 128);
  ASSERT_TRUE(keep.ok());
  ASSERT_OK(db_->Commit(*txn));
  auto baseline = store_->CheckHeap();
  ASSERT_TRUE(baseline.ok());

  txn = db_->Begin();
  auto doomed1 = store_->Alloc(*txn, 1024);
  auto doomed2 = store_->Alloc(*txn, 2048);
  ASSERT_TRUE(doomed1.ok() && doomed2.ok());
  ASSERT_OK(store_->Free(*txn, *keep));
  ASSERT_OK(db_->Abort(*txn));

  // Allocator structures byte-identical in effect: keep still allocated,
  // the doomed blocks free again, heap walk clean.
  EXPECT_TRUE(store_->SizeOf(*keep).ok());
  auto after = store_->CheckHeap();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, *baseline);
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST_F(BlobStoreTest, SurvivesCrashRecovery) {
  Open();
  auto txn = db_->Begin();
  auto blob = store_->Alloc(*txn, 5000);
  ASSERT_TRUE(blob.ok());
  ASSERT_OK(store_->Write(*txn, *blob, 0, std::string(5000, 'p')));
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());

  txn = db_->Begin();
  auto blob2 = store_->Alloc(*txn, 700);
  ASSERT_TRUE(blob2.ok());
  ASSERT_OK(store_->Write(*txn, *blob2, 0, std::string(700, 'q')));
  ASSERT_OK(db_->Commit(*txn));

  ASSERT_OK(db_->CrashAndRecover());
  auto store = BlobStore::Open(db_.get(), "blobs");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->CheckHeap().ok());
  txn = db_->Begin();
  std::string got(700, '\0');
  ASSERT_OK(store->Read(*txn, *blob2, 0, 700, got.data()));
  EXPECT_EQ(got, std::string(700, 'q'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(BlobStoreTest, UncommittedAllocRolledBackByCrash) {
  Open();
  auto txn = db_->Begin();
  auto blob = store_->Alloc(*txn, 4096);
  ASSERT_TRUE(blob.ok());
  ASSERT_OK(db_->log()->Flush());  // Ops reach the stable log, txn doesn't.
  ASSERT_OK(db_->CrashAndRecover());

  auto store = BlobStore::Open(db_.get(), "blobs");
  ASSERT_TRUE(store.ok());
  auto free_blocks = store->CheckHeap();
  ASSERT_TRUE(free_blocks.ok()) << free_blocks.status().ToString();
  // Nothing allocated: SizeOf at the old offset sees a free block.
  EXPECT_FALSE(store->SizeOf(*blob).ok());
}

TEST_F(BlobStoreTest, WildWriteIntoBlobDetectedAndTraced) {
  Open(ProtectionScheme::kReadLog);
  auto store = BlobStore::Open(db_.get(), "blobs");
  ASSERT_TRUE(store.ok());
  auto txn = db_->Begin();
  auto blob = store->Alloc(*txn, 2000);
  ASSERT_TRUE(blob.ok());
  ASSERT_OK(store->Write(*txn, *blob, 0, std::string(2000, 'w')));
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());

  FaultInjector inject(db_.get(), 13);
  inject.WildWriteAt(*blob + 512, "SMASHED");

  // A transaction reads the blob (read-logged) and writes a summary
  // elsewhere in the heap.
  txn = db_->Begin();
  TxnId reader = (*txn)->id();
  std::string got(2000, '\0');
  ASSERT_OK(store->Read(*txn, *blob, 0, 2000, got.data()));
  auto summary = store->Alloc(*txn, 64);
  ASSERT_TRUE(summary.ok());
  ASSERT_OK(store->Write(*txn, *summary, 0, got.substr(510, 10)));
  ASSERT_OK(db_->Commit(*txn));

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  ASSERT_OK(db_->CrashAndRecover());
  const auto& deleted = db_->last_recovery_report().deleted_txns;
  EXPECT_NE(std::find(deleted.begin(), deleted.end(), reader), deleted.end());
  // Blob content restored; heap structurally sound.
  auto store2 = BlobStore::Open(db_.get(), "blobs");
  ASSERT_TRUE(store2.ok());
  ASSERT_TRUE(store2->CheckHeap().ok());
  txn = db_->Begin();
  ASSERT_OK(store2->Read(*txn, *blob, 0, 2000, got.data()));
  EXPECT_EQ(got, std::string(2000, 'w'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(BlobStoreTest, CheckHeapDiagnosesCorruptHeader) {
  Open();
  auto txn = db_->Begin();
  auto blob = store_->Alloc(*txn, 128);
  ASSERT_TRUE(blob.ok());
  ASSERT_OK(db_->Commit(*txn));

  FaultInjector inject(db_.get(), 5);
  inject.WildWriteAt(*blob - 16, "XXXX");  // Smash the magic.
  auto check = store_->CheckHeap();
  EXPECT_TRUE(check.status().IsCorruption());
}

TEST_F(BlobStoreTest, RandomizedAllocFreeAgainstOracle) {
  Open();
  Random rng(321);
  std::map<DbPtr, std::pair<uint64_t, char>> live;  // blob -> (size, fill).
  auto txn = db_->Begin();
  for (int i = 0; i < 300; ++i) {
    if (live.size() < 20 && rng.OneIn(2)) {
      uint64_t size = 16 + rng.Uniform(3000);
      auto blob = store_->Alloc(*txn, size);
      if (blob.ok()) {
        char fill = static_cast<char>('a' + rng.Uniform(26));
        ASSERT_OK(store_->Write(*txn, *blob, 0, std::string(size, fill)));
        live[*blob] = {size, fill};
      }
    } else if (!live.empty()) {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      if (rng.OneIn(3)) {
        ASSERT_OK(store_->Free(*txn, it->first));
        live.erase(it);
      } else {
        std::string got(it->second.first, '\0');
        ASSERT_OK(store_->Read(*txn, it->first, 0, got.size(), got.data()));
        EXPECT_EQ(got, std::string(it->second.first, it->second.second));
      }
    }
    if (i % 60 == 59) {
      ASSERT_OK(db_->Commit(*txn));
      txn = db_->Begin();
      ASSERT_TRUE(store_->CheckHeap().ok());
    }
  }
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_TRUE(store_->CheckHeap().ok());
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

}  // namespace
}  // namespace cwdb
