// Corruption-forensics tests: every detection path must file a structured
// incident dossier into incidents.jsonl (with attribution, codeword
// evidence and the note linkage), delete-transaction recovery must emit a
// provenance graph explaining each deleted transaction, and the once-
// undetected fault of DESIGN §8 — a checkpoint-page bit flip on disk — is
// now caught at load by the parity sidecar, repaired in place, and filed
// as a linked detection + repair dossier pair.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "common/json.h"
#include "core/database.h"
#include "faultinject/crash_harness.h"
#include "faultinject/fault_injector.h"
#include "obs/forensics.h"
#include "recovery/provenance.h"
#include "storage/attribution.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

std::vector<JsonValue> LoadIncidents(const std::string& dir) {
  size_t skipped = 0;
  Result<std::vector<JsonValue>> r =
      LoadIncidentFile(dir + "/incidents.jsonl", &skipped);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(skipped, 0u);
  return r.ok() ? *r : std::vector<JsonValue>();
}

/// First incident whose "source" field matches, or nullptr.
const JsonValue* FindBySource(const std::vector<JsonValue>& incidents,
                              const std::string& source) {
  for (const JsonValue& inc : incidents) {
    if (inc.Str("source") == source) return &inc;
  }
  return nullptr;
}

/// Builds a one-table database and returns the image offset of `slot`.
struct Fixture {
  std::unique_ptr<Database> db;
  TableId table = 0;
  uint32_t slots[4] = {};

  static Fixture Build(const std::string& dir, ProtectionScheme scheme,
                       uint32_t region_size = 512) {
    Fixture f;
    auto db = Database::Open(SmallDbOptions(dir, scheme, region_size));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    if (!db.ok()) return f;
    f.db = std::move(*db);
    auto txn = f.db->Begin();
    EXPECT_TRUE(txn.ok());
    auto t = f.db->CreateTable(*txn, "acct", 64, 256);
    EXPECT_TRUE(t.ok());
    f.table = *t;
    for (int i = 0; i < 4; ++i) {
      auto rid = f.db->Insert(*txn, f.table, std::string(64, 'a' + i));
      EXPECT_TRUE(rid.ok());
      f.slots[i] = rid->slot;
    }
    EXPECT_OK(f.db->Commit(*txn));
    EXPECT_OK(f.db->Checkpoint());  // Certify a clean baseline.
    return f;
  }
};

TEST(Attribution, RecordRangeMapsToTableAndSlots) {
  TempDir dir;
  Fixture f = Fixture::Build(dir.path(), ProtectionScheme::kDataCodeword);
  ASSERT_NE(f.db, nullptr);

  DbPtr off = f.db->image()->RecordOff(f.table, f.slots[1]);
  std::vector<RangeAttribution> pieces =
      AttributeRange(*f.db->image(), off, 64 + 32);  // Slot 1 + part of 2.
  ASSERT_FALSE(pieces.empty());
  EXPECT_EQ(pieces[0].kind, ImageAreaKind::kRecordData);
  EXPECT_EQ(pieces[0].table_name, "acct");
  EXPECT_EQ(pieces[0].first_slot, f.slots[1]);
  EXPECT_EQ(pieces[0].last_slot, f.slots[2]);
}

TEST(Forensics, AuditFailureFilesDossierLinkedToNote) {
  TempDir dir;
  Fixture f = Fixture::Build(dir.path(), ProtectionScheme::kDataCodeword);
  ASSERT_NE(f.db, nullptr);

  FaultInjector inject(f.db.get(), 7);
  DbPtr victim = f.db->image()->RecordOff(f.table, f.slots[1]);
  inject.WildWriteAt(victim, "garbage-bytes");

  auto report = f.db->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);

  std::vector<JsonValue> incidents = LoadIncidents(dir.path());
  ASSERT_EQ(incidents.size(), 1u);
  const JsonValue& inc = incidents[0];
  EXPECT_EQ(inc.U64("id"), 1u);
  EXPECT_EQ(inc.Str("source"), "audit");
  EXPECT_EQ(inc.Str("scheme"), "Data CW");
  EXPECT_GT(inc.U64("lsn"), 0u);
  EXPECT_FALSE(inc.Str("detail").empty());

  const JsonValue* regions = inc.Find("regions");
  ASSERT_NE(regions, nullptr);
  ASSERT_TRUE(regions->is_array());
  ASSERT_FALSE(regions->array().empty());
  const JsonValue& region = regions->array()[0];
  // The wild write falls inside the reported region...
  EXPECT_LE(region.U64("off"), victim);
  EXPECT_GT(region.U64("off") + region.U64("len"), victim);
  // ...with codeword evidence (the XOR delta of a real mismatch is
  // nonzero) and a bounded hexdump of the bytes as found.
  ASSERT_NE(region.Find("codeword_delta"), nullptr);
  EXPECT_NE(region.U64("codeword_delta"), 0u);
  EXPECT_EQ(region.U64("codeword_delta"),
            region.U64("codeword_stored") ^ region.U64("codeword_computed"));
  EXPECT_FALSE(region.Str("hexdump").empty());
  // Attribution maps the region through the table directory.
  const JsonValue* attr = region.Find("attribution");
  ASSERT_NE(attr, nullptr);
  ASSERT_TRUE(attr->is_array());
  bool found_record_data = false;
  for (const JsonValue& a : attr->array()) {
    if (a.Str("kind") == "record_data") {
      found_record_data = true;
      EXPECT_EQ(a.Str("table_name"), "acct");
    }
  }
  EXPECT_TRUE(found_record_data);

  // The corruption note carries the dossier id: detection → note →
  // recovery are one linked chain.
  DbFiles files(dir.path());
  auto note = ReadCorruptionNote(files.CorruptNote());
  ASSERT_TRUE(note.ok()) << note.status().ToString();
  EXPECT_EQ(note->incident_id, inc.U64("id"));
}

TEST(Forensics, ReadPrecheckRefusalFilesDossier) {
  TempDir dir;
  Fixture f = Fixture::Build(dir.path(), ProtectionScheme::kReadPrecheck);
  ASSERT_NE(f.db, nullptr);

  // Corrupt the victim's region *and* a sibling region in the same
  // 64-region parity group: over the repair tier's correction budget, so
  // the precheck refuses the read (a lone corrupt region would be
  // reconstructed in place and the read would succeed).
  FaultInjector inject(f.db.get(), 11);
  DbPtr victim = f.db->image()->RecordOff(f.table, f.slots[2]);
  uint64_t r = victim / 512;
  uint64_t sib = (r % 64 != 63) ? r + 1 : r - 1;
  inject.WildWriteAt(victim, "clobbered");
  ASSERT_TRUE(inject.WildWriteAt(sib * 512 + 8, "clobbered").changed_bits);

  auto txn = f.db->Begin();
  ASSERT_TRUE(txn.ok());
  std::string out;
  Status s = f.db->Read(*txn, f.table, f.slots[2], &out);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  std::vector<JsonValue> incidents = LoadIncidents(dir.path());
  const JsonValue* inc = FindBySource(incidents, "read_precheck");
  ASSERT_NE(inc, nullptr);
  EXPECT_EQ(inc->Str("scheme"), "Data CW w/Precheck");
  EXPECT_NE(inc->Str("detail").find("read precheck refused"),
            std::string::npos);
  // The refused read's region is implicated, with codeword evidence.
  const JsonValue* regions = inc->Find("regions");
  ASSERT_NE(regions, nullptr);
  ASSERT_FALSE(regions->array().empty());
  EXPECT_NE(regions->array()[0].U64("codeword_delta"), 0u);
  // The reading transaction was active at detection time.
  const JsonValue* active = inc->Find("active_txns");
  ASSERT_NE(active, nullptr);
  EXPECT_FALSE(active->array().empty());
  ASSERT_OK(f.db->Abort(*txn));
}

TEST(Forensics, HardwareTrapFilesDossier) {
  TempDir dir;
  Fixture f = Fixture::Build(dir.path(), ProtectionScheme::kHardware);
  ASSERT_NE(f.db, nullptr);

  FaultInjector inject(f.db.get(), 13);
  DbPtr victim = f.db->image()->RecordOff(f.table, f.slots[0]);
  FaultInjector::Outcome out = inject.WildWriteAt(victim, "trapped");
  ASSERT_TRUE(out.prevented);

  std::vector<JsonValue> incidents = LoadIncidents(dir.path());
  const JsonValue* inc = FindBySource(incidents, "mprotect_trap");
  ASSERT_NE(inc, nullptr);
  EXPECT_NE(inc->Str("detail").find("image bytes unchanged"),
            std::string::npos);
  const JsonValue* regions = inc->Find("regions");
  ASSERT_NE(regions, nullptr);
  ASSERT_FALSE(regions->array().empty());
  EXPECT_EQ(regions->array()[0].U64("off"), victim);
}

// The §4.3 spread scenario, asserted down to the provenance edges: a wild
// write corrupts 'savings'; T_carrier reads it and writes 'escrow';
// T_second reads escrow and writes 'payroll'; T_clean touches neither.
// Recovery must delete carrier and second, keep clean, and the graph must
// say WHY: carrier read the incident's root range, second read a range
// tainted by carrier.
TEST(Forensics, RecoveryBuildsProvenanceGraph) {
  TempDir dir;
  constexpr uint32_t kRecordSize = 128;
  auto opened = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kReadLog, kRecordSize));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);

  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  auto ledger = db->CreateTable(*txn, "ledger", kRecordSize, 32);
  ASSERT_TRUE(ledger.ok());
  uint32_t slots[5];
  for (int i = 0; i < 5; ++i) {
    auto rid = db->Insert(*txn, *ledger, std::string(kRecordSize, 'A' + i));
    ASSERT_TRUE(rid.ok());
    slots[i] = rid->slot;
  }
  ASSERT_OK(db->Commit(*txn));
  ASSERT_OK(db->Checkpoint());

  FaultInjector inject(db.get(), 2024);
  DbPtr victim = db->image()->RecordOff(*ledger, slots[1]);
  inject.WildWriteAt(victim, "savings:99999999");

  // T_carrier: reads corrupt savings, writes escrow.
  txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  TxnId carrier = (*txn)->id();
  std::string val;
  ASSERT_OK(db->Read(*txn, *ledger, slots[1], &val));
  ASSERT_OK(db->Update(*txn, *ledger, slots[2], 0, "esc<" + val.substr(0, 8)));
  ASSERT_OK(db->Commit(*txn));

  // T_second: reads escrow (indirectly corrupt), writes payroll.
  txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  TxnId second = (*txn)->id();
  ASSERT_OK(db->Read(*txn, *ledger, slots[2], &val));
  ASSERT_OK(db->Update(*txn, *ledger, slots[3], 0, "pay<" + val.substr(0, 8)));
  ASSERT_OK(db->Commit(*txn));

  // T_clean: reads checking, writes petty — untainted.
  txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  TxnId clean = (*txn)->id();
  ASSERT_OK(db->Read(*txn, *ledger, slots[0], &val));
  ASSERT_OK(db->Update(*txn, *ledger, slots[4], 0, "petty:42"));
  ASSERT_OK(db->Commit(*txn));

  auto report = db->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  std::vector<JsonValue> incidents = LoadIncidents(dir.path());
  ASSERT_EQ(incidents.size(), 1u);
  const uint64_t incident_id = incidents[0].U64("id");

  ASSERT_OK(db->CrashAndRecover());
  const RecoveryReport& rr = db->last_recovery_report();
  auto deleted = [&](TxnId id) {
    return std::find(rr.deleted_txns.begin(), rr.deleted_txns.end(), id) !=
           rr.deleted_txns.end();
  };
  ASSERT_TRUE(deleted(carrier));
  ASSERT_TRUE(deleted(second));
  ASSERT_FALSE(deleted(clean));

  const ProvenanceGraph& g = rr.provenance;
  EXPECT_EQ(g.incident_id, incident_id);
  ASSERT_FALSE(g.roots.empty());

  // Carrier was implicated by reading the incident's root range directly.
  const ProvenanceEdge* ce = g.EdgeFor(carrier);
  ASSERT_NE(ce, nullptr);
  EXPECT_EQ(ce->reason, ProvenanceReason::kReadCorruptRange);
  EXPECT_EQ(ce->from_txn, 0u);
  EXPECT_LE(ce->via.off, victim);
  EXPECT_GT(ce->via.off + ce->via.len, victim);
  EXPECT_GT(ce->at_lsn, 0u);

  // Second was implicated through carrier's suppressed escrow write.
  const ProvenanceEdge* se = g.EdgeFor(second);
  ASSERT_NE(se, nullptr);
  EXPECT_EQ(se->reason, ProvenanceReason::kReadCorruptRange);
  EXPECT_EQ(se->from_txn, carrier);

  // Clean has no edge; second's reason path walks back to the root.
  EXPECT_EQ(g.EdgeFor(clean), nullptr);
  std::vector<const ProvenanceEdge*> path = g.PathFor(second);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0]->txn, second);
  EXPECT_EQ(path[1]->txn, carrier);

  // The graph was persisted as valid JSON, and its DOT export names every
  // implicated transaction.
  DbFiles files(dir.path());
  std::string json;
  ASSERT_OK(ReadFileToString(files.ProvenanceFile(), &json));
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->U64("incident_id"), incident_id);
  const JsonValue* edges = parsed->Find("edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->array().size(), g.edges.size());
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("txn" + std::to_string(carrier)), std::string::npos);
  EXPECT_NE(dot.find("txn" + std::to_string(second)), std::string::npos);
}

// Crash-matrix × forensics: a bit flip inside a WAL batch is caught by the
// frame CRC at the verifying reopen, which must file a wal_crc dossier.
TEST(Forensics, WalBitFlipFilesWalCrcDossier) {
  TempDir dir;
  std::string case_dir = dir.path() + "/case";
  crashharness::CaseSpec spec;
  spec.point = "wal.flush.pwrite";
  spec.mode = crashpoint::Mode::kBitFlip;
  // Flip a later flush so a valid log prefix survives in front of the
  // damaged frame (the dossier's lsn records that prefix).
  spec.countdown = 3;
  Result<crashharness::CaseResult> r = crashharness::RunCase(case_dir, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::vector<JsonValue> incidents = LoadIncidents(case_dir);
  const JsonValue* inc = FindBySource(incidents, "wal_crc");
  ASSERT_NE(inc, nullptr);
  EXPECT_GT(inc->U64("lsn"), 0u);  // The surviving valid prefix.
  EXPECT_NE(inc->Str("detail").find("WAL tail failed CRC"),
            std::string::npos);
}

// The §8 hole, closed: a bit flip in a checkpoint page used to be
// undetected (certification audits the in-memory image; the page write
// carried no disk checksum). The parity sidecar now verifies the loaded
// image bytes: the flip is detected at checkpoint load, reconstructed in
// place from the group's parity column, and filed as a linked detection +
// repair dossier pair — no transaction is deleted and the repaired data
// reads back byte-identical.
TEST(Forensics, CheckpointPageFlipIsDetectedAndRepairedAtLoad) {
  TempDir dir;
  DbPtr victim = 0;
  {
    Fixture f = Fixture::Build(dir.path(), ProtectionScheme::kDataCodeword);
    ASSERT_NE(f.db, nullptr);
    victim = f.db->image()->RecordOff(f.table, f.slots[1]);
    ASSERT_OK(f.db->Close());
  }

  // Flip one bit of the committed record inside the *active* checkpoint
  // image (page file offsets equal image offsets).
  DbFiles files(dir.path());
  std::string anchor;
  ASSERT_OK(ReadFileToString(files.Anchor(), &anchor));
  std::string image_path = files.CkptImage(anchor == "A" ? 0 : 1);
  std::string bytes;
  ASSERT_OK(ReadFileToString(image_path, &bytes));
  ASSERT_GT(bytes.size(), victim);
  bytes[victim] ^= 0x01;
  ASSERT_OK(WriteFileAtomic(image_path, bytes));

  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Repaired in place: nothing for the delete-transaction algorithm to do.
  EXPECT_TRUE((*db)->last_recovery_report().deleted_txns.empty());

  std::vector<JsonValue> incidents = LoadIncidents(dir.path());
  const JsonValue* detect = FindBySource(incidents, "ckpt_load");
  ASSERT_NE(detect, nullptr) << "checkpoint-load verification did not fire";
  const JsonValue* repair = FindBySource(incidents, "repair");
  ASSERT_NE(repair, nullptr) << "parity repair did not file a dossier";
  EXPECT_EQ(repair->U64("linked_incident_id"), detect->U64("id"));
  ASSERT_EQ(repair->Find("regions")->array().size(), 1u);
  const JsonValue& region = repair->Find("regions")->array()[0];
  EXPECT_LE(region.U64("off"), victim);
  EXPECT_GT(region.U64("off") + region.U64("len"), victim);
  EXPECT_NE(region.U64("repair_delta"), 0u);  // The flip, in codeword space.

  // The repaired bytes read back exactly as committed, and a full audit
  // over the loaded arena is clean.
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  std::string rec;
  TableId table = *(*db)->FindTable("acct");
  ASSERT_OK((*db)->Read(*txn, table, 1, &rec));
  EXPECT_EQ(rec, std::string(64, 'b'));
  ASSERT_OK((*db)->Commit(*txn));
  auto audit = (*db)->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

}  // namespace
}  // namespace cwdb
