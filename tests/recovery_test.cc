// Restart-recovery edge cases: real process kills (fork + _exit), crash
// during/after rollback, transactions spanning multiple checkpoints,
// recovery idempotence, torn log tails, Audit_SN conservatism, and the
// always-recover behaviour of the Codeword Read Logging scheme.

#include <sys/types.h>
#include <sys/wait.h>
#include <csignal>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "faultinject/fault_injector.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

TEST(ProcessCrash, CommittedDataSurvivesRealKill) {
  TempDir dir;
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: commit one record, then die without any shutdown.
    auto db =
        Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kReadLog));
    if (!db.ok()) ::_exit(10);
    auto txn = (*db)->Begin();
    auto t = (*db)->CreateTable(*txn, "t", 32, 16);
    if (!t.ok()) ::_exit(11);
    if (!(*db)->Insert(*txn, *t, std::string(32, 'k')).ok()) ::_exit(12);
    if (!(*db)->Commit(*txn).ok()) ::_exit(13);
    ::_exit(0);  // No destructors, no flush beyond the commit's.
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child failed with " << WEXITSTATUS(status);

  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kReadLog));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = (*db)->FindTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*db)->CountRecords(*t), 1u);
}

TEST(ProcessCrash, OpenTransactionDiesWithRealKill) {
  TempDir dir;
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto db =
        Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kNone));
    if (!db.ok()) ::_exit(10);
    auto txn = (*db)->Begin();
    auto t = (*db)->CreateTable(*txn, "t", 32, 16);
    if (!t.ok()) ::_exit(11);
    if (!(*db)->Commit(*txn).ok()) ::_exit(12);
    // Open transaction: inserts but never commits. Force the redo to the
    // stable log via a checkpoint so recovery has something to undo.
    auto txn2 = (*db)->Begin();
    for (int i = 0; i < 5; ++i) {
      if (!(*db)->Insert(*txn2, *t, std::string(32, 'u')).ok()) ::_exit(13);
    }
    if (!(*db)->Checkpoint().ok()) ::_exit(14);
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child failed with " << WEXITSTATUS(status);

  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kNone));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = (*db)->FindTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*db)->CountRecords(*t), 0u);  // Rolled back at restart.
  EXPECT_EQ((*db)->last_recovery_report().rolled_back_txns.size(), 1u);
}

TEST(ProcessCrash, KillDuringRecoveryIsHarmless) {
  // Recovery itself must be crash-safe: kill the recovering process at
  // varying points and verify the next open always lands on the same
  // committed state. (The anchor only toggles after a complete, certified
  // checkpoint, so a half-finished recovery leaves the previous
  // checkpoint + log intact.)
  TempDir dir;
  {
    auto db =
        Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kReadLog));
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->Begin();
    auto t = (*db)->CreateTable(*txn, "t", 64, 256);
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(64, 'r')).ok());
    }
    ASSERT_OK((*db)->Commit(*txn));
    // Died without checkpointing: every future open has real redo work.
  }
  for (int delay_us : {0, 200, 1000, 5000, 20000}) {
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: start recovery; the parent kills us somewhere inside it.
      auto db = Database::Open(
          SmallDbOptions(dir.path(), ProtectionScheme::kReadLog));
      ::_exit(db.ok() ? 0 : 10);
    }
    ::usleep(delay_us);
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    auto db =
        Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kReadLog));
    ASSERT_TRUE(db.ok()) << "delay " << delay_us << ": "
                         << db.status().ToString();
    auto t = (*db)->FindTable("t");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*db)->CountRecords(*t), 200u) << "delay " << delay_us;
    auto audit = (*db)->Audit();
    ASSERT_TRUE(audit.ok());
    EXPECT_TRUE(audit->clean);
  }
}

TEST(CleanShutdown, CloseMakesRestartInstant) {
  TempDir dir;
  {
    auto db = Database::Open(
        SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword));
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->Begin();
    auto t = (*db)->CreateTable(*txn, "t", 64, 64);
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(64, 'c')).ok());
    }
    ASSERT_OK((*db)->Commit(*txn));
    ASSERT_OK((*db)->Close());
  }
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword));
  ASSERT_TRUE(db.ok());
  // Everything was in the final checkpoint: the redo scan applied nothing.
  EXPECT_EQ((*db)->last_recovery_report().redo_records_applied, 0u);
  EXPECT_EQ((*db)->CountRecords(*(*db)->FindTable("t")), 30u);
}

class RecoveryEdgeTest : public ::testing::Test {
 protected:
  void Open(ProtectionScheme scheme = ProtectionScheme::kReadLog) {
    auto db = Database::Open(SmallDbOptions(dir_.path(), scheme, 128));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }
  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(RecoveryEdgeTest, CrashImmediatelyAfterAbortKeepsRollback) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 32);
  ASSERT_TRUE(t.ok());
  auto rid = db_->Insert(*txn, *t, std::string(64, 'o'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));

  // Abort a multi-operation transaction; its compensations sit in the
  // un-flushed tail when the crash hits. Restart must reach the same
  // rolled-back state by re-undoing (repeat history + re-undo, no CLRs).
  txn = db_->Begin();
  ASSERT_OK(db_->Update(*txn, *t, rid->slot, 0, "dirty1"));
  ASSERT_TRUE(db_->Insert(*txn, *t, std::string(64, 'x')).ok());
  ASSERT_OK(db_->Delete(*txn, *t, rid->slot));
  ASSERT_OK(db_->Abort(*txn));
  ASSERT_OK(db_->CrashAndRecover());

  auto t2 = db_->FindTable("t");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(db_->CountRecords(*t2), 1u);
  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *t2, rid->slot, &got));
  EXPECT_EQ(got, std::string(64, 'o'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(RecoveryEdgeTest, TransactionSpanningTwoCheckpoints) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 32);
  ASSERT_TRUE(t.ok());
  auto rid = db_->Insert(*txn, *t, std::string(64, 's'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));

  // One transaction updates across two checkpoints, then the crash. Its
  // physical undo travels via the checkpointed ATT both times.
  txn = db_->Begin();
  ASSERT_OK(db_->Update(*txn, *t, rid->slot, 0, "AAAA"));
  ASSERT_OK(db_->Checkpoint());
  ASSERT_OK(db_->Update(*txn, *t, rid->slot, 8, "BBBB"));
  ASSERT_OK(db_->Checkpoint());
  ASSERT_OK(db_->Update(*txn, *t, rid->slot, 16, "CCCC"));
  ASSERT_OK(db_->CrashAndRecover());

  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *db_->FindTable("t"), rid->slot, &got));
  EXPECT_EQ(got, std::string(64, 's'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(RecoveryEdgeTest, CommittedAbortedAndOpenMix) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 64);
  ASSERT_TRUE(t.ok());
  ASSERT_OK(db_->Commit(*txn));

  // Committed.
  txn = db_->Begin();
  auto committed = db_->Insert(*txn, *t, std::string(64, 'C'));
  ASSERT_TRUE(committed.ok());
  ASSERT_OK(db_->Commit(*txn));
  // Aborted (compensations logged).
  txn = db_->Begin();
  ASSERT_TRUE(db_->Insert(*txn, *t, std::string(64, 'A')).ok());
  ASSERT_OK(db_->Abort(*txn));
  // Open at crash.
  txn = db_->Begin();
  ASSERT_TRUE(db_->Insert(*txn, *t, std::string(64, 'O')).ok());
  // Push the open transaction's op redo to the stable log.
  ASSERT_OK(db_->log()->Flush());

  ASSERT_OK(db_->CrashAndRecover());
  EXPECT_EQ(db_->CountRecords(*db_->FindTable("t")), 1u);
  EXPECT_EQ(db_->last_recovery_report().rolled_back_txns.size(), 1u);
}

TEST_F(RecoveryEdgeTest, GarbageAppendedToLogIsIgnored) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 32);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db_->Insert(*txn, *t, std::string(64, 'g')).ok());
  ASSERT_OK(db_->Commit(*txn));
  db_.reset();

  // A torn flush leaves trailing garbage on the stable log.
  DbFiles files(dir_.path());
  std::string log;
  ASSERT_OK(ReadFileToString(files.SystemLog(), &log));
  log += std::string(100, '\xAB');
  ASSERT_OK(WriteFileAtomic(files.SystemLog(), log));

  Open();
  EXPECT_EQ(db_->CountRecords(*db_->FindTable("t")), 1u);
}

TEST_F(RecoveryEdgeTest, AuditSnConservatismDeletesPreCorruptionReaders) {
  // The recovery algorithm "conservatively assumes that the error occurred
  // immediately after Audit_SN" (§4.3): a transaction that read the
  // eventually-corrupt region after the last clean audit — even BEFORE the
  // wild write actually happened — is deleted. Pin this over-approximation.
  Open(ProtectionScheme::kReadLog);
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 128, 16);
  ASSERT_TRUE(t.ok());
  auto a = db_->Insert(*txn, *t, std::string(128, 'a'));
  auto b = db_->Insert(*txn, *t, std::string(128, 'b'));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());  // Last clean audit.

  // Early reader: touches the region BEFORE it is corrupted.
  txn = db_->Begin();
  TxnId early = (*txn)->id();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *t, a->slot, &got));
  ASSERT_OK(db_->Update(*txn, *t, b->slot, 0, "early"));
  ASSERT_OK(db_->Commit(*txn));

  FaultInjector inject(db_.get(), 1);
  inject.WildWriteAt(db_->image()->RecordOff(*t, a->slot), "NOW-CORRUPT");

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  ASSERT_OK(db_->CrashAndRecover());
  const auto& deleted = db_->last_recovery_report().deleted_txns;
  EXPECT_NE(std::find(deleted.begin(), deleted.end(), early), deleted.end())
      << "conservative Audit_SN window should include the early reader";
}

TEST_F(RecoveryEdgeTest, CleanAuditNarrowsTheBlastRadius) {
  // Companion: a clean audit AFTER the early reader moves Audit_SN past
  // it, so the same early reader survives.
  Open(ProtectionScheme::kReadLog);
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 128, 16);
  ASSERT_TRUE(t.ok());
  auto a = db_->Insert(*txn, *t, std::string(128, 'a'));
  auto b = db_->Insert(*txn, *t, std::string(128, 'b'));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());

  txn = db_->Begin();
  TxnId early = (*txn)->id();
  std::string got;
  ASSERT_OK(db_->Read(*txn, *t, a->slot, &got));
  ASSERT_OK(db_->Update(*txn, *t, b->slot, 0, "early"));
  ASSERT_OK(db_->Commit(*txn));

  auto clean = db_->Audit();  // Certifies the early reader's world.
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean->clean);

  FaultInjector inject(db_.get(), 1);
  inject.WildWriteAt(db_->image()->RecordOff(*t, a->slot), "NOW-CORRUPT");
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  ASSERT_OK(db_->CrashAndRecover());
  const auto& deleted = db_->last_recovery_report().deleted_txns;
  EXPECT_EQ(std::find(deleted.begin(), deleted.end(), early), deleted.end())
      << "a clean audit between read and corruption must spare the reader";
}

TEST_F(RecoveryEdgeTest, CwReadLogRecoversOnEveryRestartWithNoFalsePositives) {
  Open(ProtectionScheme::kCodewordReadLog);
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 128, 16);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Insert(*txn, *t, std::string(128, 'c')).ok());
    std::string got;
    ASSERT_OK(db_->Read(*txn, *t, static_cast<uint32_t>(i), &got));
  }
  ASSERT_OK(db_->Commit(*txn));
  for (int round = 0; round < 3; ++round) {
    ASSERT_OK(db_->CrashAndRecover());
    EXPECT_TRUE(db_->last_recovery_report().deleted_txns.empty())
        << "clean history must never be deleted (round " << round << ")";
    EXPECT_EQ(db_->CountRecords(*db_->FindTable("t")), 8u);
  }
}

TEST_F(RecoveryEdgeTest, RecoveryReportRedoBounds) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "t", 64, 32);
  ASSERT_TRUE(t.ok());
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());
  Lsn after_ckpt = db_->CurrentLsn();

  txn = db_->Begin();
  ASSERT_TRUE(db_->Insert(*txn, *t, std::string(64, 'r')).ok());
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->CrashAndRecover());

  const RecoveryReport& report = db_->last_recovery_report();
  EXPECT_LE(report.redo_start, after_ckpt);
  EXPECT_GT(report.redo_end, report.redo_start);
  EXPECT_GT(report.redo_records_applied, 0u);
}

}  // namespace
}  // namespace cwdb
