// Delete-transaction recovery over *structural* operations: corrupt
// transactions whose history includes inserts and deletes (logical undo of
// kDeleteSlot / kReinsertSlot), slot reuse after recovery, bitmap-word
// cascades, and CreateTable in the corruption window.

#include <gtest/gtest.h>

#include "core/database.h"
#include "faultinject/fault_injector.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

constexpr uint32_t kRec = 128;

class StructuralCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), ProtectionScheme::kReadLog, kRec));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", kRec, 64);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    for (int i = 0; i < 8; ++i) {
      auto rid = db_->Insert(*txn, table_, std::string(kRec, '0' + i));
      ASSERT_TRUE(rid.ok());
      slots_[i] = rid->slot;
    }
    ASSERT_OK(db_->Commit(*txn));
    ASSERT_OK(db_->Checkpoint());
  }

  void Corrupt(int i) {
    FaultInjector inject(db_.get(), 42);
    inject.WildWriteAt(db_->image()->RecordOff(table_, slots_[i]),
                       "STRUCTURAL");
  }

  void DetectAndRecover() {
    auto report = db_->Audit();
    ASSERT_TRUE(report.ok());
    ASSERT_FALSE(report->clean);
    ASSERT_OK(db_->CrashAndRecover());
  }

  bool WasDeleted(TxnId id) {
    const auto& d = db_->last_recovery_report().deleted_txns;
    return std::find(d.begin(), d.end(), id) != d.end();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
  uint32_t slots_[8] = {};
};

TEST_F(StructuralCorruptionTest, CorruptTxnInsertIsRemoved) {
  Corrupt(1);
  // Reads corrupt slot 1, then inserts a brand-new record.
  auto txn = db_->Begin();
  TxnId carrier = (*txn)->id();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[1], &got));
  auto rid = db_->Insert(*txn, table_, got);
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));
  uint32_t new_slot = rid->slot;

  DetectAndRecover();
  EXPECT_TRUE(WasDeleted(carrier));
  // The inserted record is gone: its bitmap write was suppressed.
  EXPECT_FALSE(db_->image()->SlotAllocated(table_, new_slot));
  EXPECT_EQ(db_->CountRecords(table_), 8u);
}

TEST_F(StructuralCorruptionTest, CorruptTxnDeleteIsUndone) {
  Corrupt(1);
  // Reads corrupt slot 1, then deletes record 5.
  auto txn = db_->Begin();
  TxnId carrier = (*txn)->id();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[1], &got));
  ASSERT_OK(db_->Delete(*txn, table_, slots_[5]));
  ASSERT_OK(db_->Commit(*txn));

  DetectAndRecover();
  EXPECT_TRUE(WasDeleted(carrier));
  // Record 5 still exists with its original bytes (the delete's bitmap
  // write was suppressed during replay).
  EXPECT_TRUE(db_->image()->SlotAllocated(table_, slots_[5]));
  txn = db_->Begin();
  ASSERT_OK(db_->Read(*txn, table_, slots_[5], &got));
  EXPECT_EQ(got, std::string(kRec, '5'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(StructuralCorruptionTest, PreCorruptionInsertRolledBackViaPrefixUndo) {
  Corrupt(1);
  // Inserts FIRST (clean), then reads corrupt data: the insert was applied
  // during replay and must be rolled back by the prefix undo.
  auto txn = db_->Begin();
  TxnId carrier = (*txn)->id();
  auto rid = db_->Insert(*txn, table_, std::string(kRec, 'P'));
  ASSERT_TRUE(rid.ok());
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[1], &got));
  ASSERT_OK(db_->Commit(*txn));

  DetectAndRecover();
  EXPECT_TRUE(WasDeleted(carrier));
  EXPECT_FALSE(db_->image()->SlotAllocated(table_, rid->slot));
  EXPECT_EQ(db_->CountRecords(table_), 8u);
}

TEST_F(StructuralCorruptionTest, BitmapWordCascadeDeletesLaterInserters) {
  // A suppressed insert poisons its allocation-bitmap word; later
  // inserters write the same word and are conservatively deleted (the
  // physical-granularity over-approximation the paper accepts: "the data
  // logged as read may overestimate").
  Corrupt(1);
  auto txn = db_->Begin();
  TxnId carrier = (*txn)->id();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[1], &got));
  ASSERT_TRUE(db_->Insert(*txn, table_, std::string(kRec, 'X')).ok());
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  TxnId later_inserter = (*txn)->id();
  ASSERT_TRUE(db_->Insert(*txn, table_, std::string(kRec, 'Y')).ok());
  ASSERT_OK(db_->Commit(*txn));

  DetectAndRecover();
  EXPECT_TRUE(WasDeleted(carrier));
  EXPECT_TRUE(WasDeleted(later_inserter));  // Same bitmap word.
  EXPECT_EQ(db_->CountRecords(table_), 8u);
}

TEST_F(StructuralCorruptionTest, SlotsReusableAfterRecovery) {
  Corrupt(1);
  auto txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[1], &got));
  auto rid = db_->Insert(*txn, table_, got);
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));
  DetectAndRecover();

  // The freed slot can be re-allocated and everything stays consistent.
  txn = db_->Begin();
  auto rid2 = db_->Insert(*txn, table_, std::string(kRec, 'R'));
  ASSERT_TRUE(rid2.ok());
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(db_->CountRecords(table_), 9u);
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
  ASSERT_OK(db_->CrashAndRecover());
  EXPECT_EQ(db_->CountRecords(table_), 9u);
}

TEST_F(StructuralCorruptionTest, CreateTableByCorruptTxnDisappears) {
  Corrupt(1);
  auto txn = db_->Begin();
  TxnId carrier = (*txn)->id();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[1], &got));
  auto t2 = db_->CreateTable(*txn, "tainted_table", 64, 16);
  ASSERT_TRUE(t2.ok());
  ASSERT_OK(db_->Commit(*txn));

  DetectAndRecover();
  EXPECT_TRUE(WasDeleted(carrier));
  EXPECT_TRUE(db_->FindTable("tainted_table").status().IsNotFound());
  // The surviving table is unaffected.
  EXPECT_EQ(db_->CountRecords(table_), 8u);
}

TEST_F(StructuralCorruptionTest, MultipleIndependentCorruptions) {
  Corrupt(1);
  Corrupt(6);
  auto txn = db_->Begin();
  TxnId r1 = (*txn)->id();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slots_[1], &got));
  ASSERT_OK(db_->Update(*txn, table_, slots_[2], 0, got.substr(0, 8)));
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  TxnId r2 = (*txn)->id();
  ASSERT_OK(db_->Read(*txn, table_, slots_[6], &got));
  ASSERT_OK(db_->Update(*txn, table_, slots_[3], 0, got.substr(0, 8)));
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  TxnId clean = (*txn)->id();
  ASSERT_OK(db_->Read(*txn, table_, slots_[0], &got));
  ASSERT_OK(db_->Update(*txn, table_, slots_[4], 0, got.substr(0, 8)));
  ASSERT_OK(db_->Commit(*txn));

  DetectAndRecover();
  EXPECT_TRUE(WasDeleted(r1));
  EXPECT_TRUE(WasDeleted(r2));
  EXPECT_FALSE(WasDeleted(clean));
  txn = db_->Begin();
  ASSERT_OK(db_->Read(*txn, table_, slots_[2], &got));
  EXPECT_EQ(got, std::string(kRec, '2'));
  ASSERT_OK(db_->Read(*txn, table_, slots_[3], &got));
  EXPECT_EQ(got, std::string(kRec, '3'));
  ASSERT_OK(db_->Commit(*txn));
}

}  // namespace
}  // namespace cwdb
