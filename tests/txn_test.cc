// Tests of the transaction layer: the lock manager (modes, re-entrancy,
// deadlock detection under real threads), multi-level operation logging,
// the prescribed update interface, rollback semantics, and concurrent
// transaction isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/database.h"
#include "tests/test_util.h"
#include "txn/lock_manager.h"

namespace cwdb {
namespace {

// ---------- LockManager ----------

TEST(LockManager, SharedLocksCoexist) {
  LockManager lm;
  ASSERT_OK(lm.Acquire(1, LockId::Record(0, 5), LockMode::kShared));
  ASSERT_OK(lm.Acquire(2, LockId::Record(0, 5), LockMode::kShared));
  EXPECT_TRUE(lm.Holds(1, LockId::Record(0, 5), LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, LockId::Record(0, 5), LockMode::kShared));
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.LockedCount(), 0u);
}

TEST(LockManager, ReentrantAcquire) {
  LockManager lm;
  ASSERT_OK(lm.Acquire(1, LockId::Table(3), LockMode::kExclusive));
  ASSERT_OK(lm.Acquire(1, LockId::Table(3), LockMode::kExclusive));
  ASSERT_OK(lm.Acquire(1, LockId::Table(3), LockMode::kShared));
  EXPECT_TRUE(lm.Holds(1, LockId::Table(3), LockMode::kExclusive));
}

TEST(LockManager, ExclusiveBlocksUntilRelease) {
  LockManager lm;
  ASSERT_OK(lm.Acquire(1, LockId::Record(0, 1), LockMode::kExclusive));
  std::atomic<bool> got{false};
  std::thread other([&] {
    ASSERT_OK(lm.Acquire(2, LockId::Record(0, 1), LockMode::kExclusive));
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  lm.ReleaseAll(1);
  other.join();
  EXPECT_TRUE(got.load());
}

TEST(LockManager, UpgradeWhenSoleHolder) {
  LockManager lm;
  ASSERT_OK(lm.Acquire(1, LockId::Record(0, 2), LockMode::kShared));
  ASSERT_OK(lm.Acquire(1, LockId::Record(0, 2), LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(1, LockId::Record(0, 2), LockMode::kExclusive));
}

TEST(LockManager, DeadlockDetected) {
  LockManager lm;
  ASSERT_OK(lm.Acquire(1, LockId::Record(0, 1), LockMode::kExclusive));
  ASSERT_OK(lm.Acquire(2, LockId::Record(0, 2), LockMode::kExclusive));

  std::atomic<bool> t2_blocked{false};
  std::thread t2([&] {
    t2_blocked = true;
    // Blocks: txn 1 holds record 1.
    Status s = lm.Acquire(2, LockId::Record(0, 1), LockMode::kExclusive);
    ASSERT_OK(s);  // Granted after txn 1 aborts and releases.
  });
  while (!t2_blocked) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // Txn 1 requesting record 2 closes the cycle: must be refused.
  Status s = lm.Acquire(1, LockId::Record(0, 2), LockMode::kExclusive);
  EXPECT_TRUE(s.IsDeadlock()) << s.ToString();
  lm.ReleaseAll(1);  // Victim aborts; txn 2 proceeds.
  t2.join();
  lm.ReleaseAll(2);
}

TEST(LockManager, SharedUpgradeDeadlock) {
  // Two shared holders both requesting upgrade is a deadlock; the second
  // requester must be refused.
  LockManager lm;
  ASSERT_OK(lm.Acquire(1, LockId::Record(0, 9), LockMode::kShared));
  ASSERT_OK(lm.Acquire(2, LockId::Record(0, 9), LockMode::kShared));
  std::atomic<bool> started{false};
  std::thread t1([&] {
    started = true;
    ASSERT_OK(lm.Acquire(1, LockId::Record(0, 9), LockMode::kExclusive));
  });
  while (!started) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Status s = lm.Acquire(2, LockId::Record(0, 9), LockMode::kExclusive);
  EXPECT_TRUE(s.IsDeadlock());
  lm.ReleaseAll(2);
  t1.join();
  lm.ReleaseAll(1);
}

// ---------- Transaction-level behaviour over a Database ----------

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db =
        Database::Open(SmallDbOptions(dir_.path(), ProtectionScheme::kNone));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 64, 256);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    ASSERT_OK(db_->Commit(*txn));
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_;
};

TEST_F(TxnTest, TwoPhaseUpdateInterface) {
  auto txn = db_->Begin();
  auto rid = db_->Insert(*txn, table_, std::string(64, 'i'));
  ASSERT_TRUE(rid.ok());
  DbPtr off = db_->image()->RecordOff(table_, rid->slot);

  // Application-style direct in-place write via the prescribed interface.
  ASSERT_OK(db_->txns()->BeginOp(*txn, OpCode::kUpdate, kMaxTables,
                                 kInvalidSlot, std::nullopt, off, 4));
  auto p = (*txn)->BeginUpdate(off, 4);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE((*txn)->update_active());
  std::memcpy(*p, "WXYZ", 4);
  ASSERT_OK((*txn)->EndUpdate());
  EXPECT_FALSE((*txn)->update_active());
  LogicalUndo undo;
  undo.code = UndoCode::kWriteRaw;
  undo.raw_off = off;
  undo.payload = std::string(4, 'i');
  ASSERT_OK(db_->txns()->CommitOp(*txn, undo));
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, rid->slot, &got));
  EXPECT_EQ(got.substr(0, 4), "WXYZ");
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(TxnTest, RollbackOfInFlightUpdate) {
  auto txn = db_->Begin();
  auto rid = db_->Insert(*txn, table_, std::string(64, 'f'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  DbPtr off = db_->image()->RecordOff(table_, rid->slot);
  ASSERT_OK(db_->txns()->BeginOp(*txn, OpCode::kUpdate, kMaxTables,
                                 kInvalidSlot, std::nullopt, off, 8));
  auto p = (*txn)->BeginUpdate(off, 8);
  ASSERT_TRUE(p.ok());
  std::memcpy(*p, "halfdone", 8);
  // Abort with the update still in flight (codeword-applied flag set).
  ASSERT_OK(db_->Abort(*txn));

  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, rid->slot, &got));
  EXPECT_EQ(got, std::string(64, 'f'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(TxnTest, UndoLogCompaction) {
  // Physical undo entries of an operation are replaced by one logical
  // entry at operation commit (multi-level recovery, §2.1).
  auto txn = db_->Begin();
  auto rid = db_->Insert(*txn, table_, std::string(64, 'u'));
  ASSERT_TRUE(rid.ok());
  // Insert performed >= 2 physical updates (bitmap + record bytes) but
  // leaves exactly one logical undo entry.
  EXPECT_EQ((*txn)->undo_entries(), 1u);
  ASSERT_OK(db_->Update(*txn, table_, rid->slot, 0, "abcd"));
  EXPECT_EQ((*txn)->undo_entries(), 2u);
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(TxnTest, IsolationReadersBlockedByWriters) {
  auto t1 = db_->Begin();
  auto rid = db_->Insert(*t1, table_, std::string(64, 'w'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*t1));

  t1 = db_->Begin();
  ASSERT_OK(db_->Update(*t1, table_, rid->slot, 0, "DIRTY"));

  std::atomic<bool> read_done{false};
  std::string got;
  std::thread reader([&] {
    auto t2 = db_->Begin();
    EXPECT_OK(db_->Read(*t2, table_, rid->slot, &got));
    read_done = true;
    EXPECT_OK(db_->Commit(*t2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(read_done.load()) << "reader saw uncommitted data";
  ASSERT_OK(db_->Commit(*t1));
  reader.join();
  EXPECT_EQ(got.substr(0, 5), "DIRTY");  // Strict 2PL: read after commit.
}

TEST_F(TxnTest, DeadlockVictimCanRetry) {
  auto t1 = db_->Begin();
  auto r1 = db_->Insert(*t1, table_, std::string(64, '1'));
  auto r2 = db_->Insert(*t1, table_, std::string(64, '2'));
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_OK(db_->Commit(*t1));

  auto ta = db_->Begin();
  auto tb = db_->Begin();
  ASSERT_OK(db_->Update(*ta, table_, r1->slot, 0, "A"));
  ASSERT_OK(db_->Update(*tb, table_, r2->slot, 0, "B"));

  std::thread other([&] {
    // tb waits for r1 (held by ta).
    Status s = db_->Update(*tb, table_, r1->slot, 0, "B2");
    // Granted after ta aborts.
    EXPECT_OK(s);
    EXPECT_OK(db_->Commit(*tb));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // ta requesting r2 closes the cycle -> deadlock -> victim.
  Status s = db_->Update(*ta, table_, r2->slot, 0, "A2");
  EXPECT_TRUE(s.IsDeadlock()) << s.ToString();
  ASSERT_OK(db_->Abort(*ta));
  other.join();

  // tb's writes won; ta's rolled back.
  auto txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, r1->slot, &got));
  EXPECT_EQ(got[0], 'B');
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(TxnTest, ConcurrentDisjointTransactions) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < kPerThread; ++j) {
        auto txn = db_->Begin();
        if (!txn.ok()) {
          ++failures;
          return;
        }
        auto rid =
            db_->Insert(*txn, table_, std::string(64, 'a' + (i * 7 + j) % 26));
        if (!rid.ok() || !db_->Commit(*txn).ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db_->CountRecords(table_), kThreads * kPerThread);
}

TEST_F(TxnTest, AbortRestoresExactByteImage) {
  auto txn = db_->Begin();
  auto rid = db_->Insert(*txn, table_, std::string(64, 'e'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK(db_->Commit(*txn));
  std::string before(
      reinterpret_cast<const char*>(db_->UnsafeRawBase()),
      4096);  // Header page snapshot.

  txn = db_->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(db_->Update(*txn, table_, rid->slot, i * 4, "!!!!"));
  }
  auto r2 = db_->Insert(*txn, table_, std::string(64, 'n'));
  ASSERT_TRUE(r2.ok());
  ASSERT_OK(db_->Delete(*txn, table_, rid->slot));
  ASSERT_OK(db_->Abort(*txn));

  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, rid->slot, &got));
  EXPECT_EQ(got, std::string(64, 'e'));
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(db_->CountRecords(table_), 1u);
  EXPECT_EQ(std::memcmp(before.data(), db_->UnsafeRawBase(), 4096), 0);
}

}  // namespace
}  // namespace cwdb
