// Property-based (model-checking style) tests:
//
//  1. Crash-recovery equivalence: for random operation schedules with
//     random crash/abort/checkpoint points, the database after restart
//     recovery equals a shadow model that applies exactly the committed
//     transactions.
//
//  2. Delete-history conflict consistency (paper §4.1): after corruption
//     + delete-transaction recovery, (a) every surviving transaction's
//     reads came from surviving writers, and (b) each record's final value
//     is the last surviving committed write (or its initial value).

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "core/database.h"
#include "faultinject/fault_injector.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

// ---------- 1. Crash-recovery equivalence ----------

struct OracleParam {
  ProtectionScheme scheme;
  uint64_t seed;
};

class CrashOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(CrashOracleTest, RecoveredStateMatchesCommittedShadow) {
  constexpr uint32_t kRecSize = 96;
  constexpr uint32_t kSlots = 48;
  TempDir dir;
  auto db = Database::Open(
      SmallDbOptions(dir.path(), GetParam().scheme, /*region=*/128));
  ASSERT_TRUE(db.ok());
  auto txn0 = (*db)->Begin();
  auto table = (*db)->CreateTable(*txn0, "t", kRecSize, kSlots);
  ASSERT_TRUE(table.ok());
  ASSERT_OK((*db)->Commit(*txn0));

  Random rng(GetParam().seed);
  // Shadow: slot -> record bytes for allocated slots (committed state).
  std::map<uint32_t, std::string> shadow;

  auto verify = [&]() {
    for (uint32_t s = 0; s < kSlots; ++s) {
      bool allocated = (*db)->image()->SlotAllocated(*table, s);
      auto it = shadow.find(s);
      ASSERT_EQ(allocated, it != shadow.end()) << "slot " << s;
      if (allocated) {
        std::string got(
            reinterpret_cast<const char*>(
                (*db)->image()->At((*db)->image()->RecordOff(*table, s))),
            kRecSize);
        ASSERT_EQ(got, it->second) << "slot " << s;
      }
    }
    ASSERT_EQ((*db)->CountRecords(*table), shadow.size());
  };

  auto random_record = [&](char tag) {
    std::string r(kRecSize, '\0');
    for (auto& c : r) c = static_cast<char>('a' + rng.Uniform(26));
    r[0] = tag;
    return r;
  };

  for (int round = 0; round < 30; ++round) {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    // Pending changes this transaction would commit.
    std::map<uint32_t, std::string> pending = shadow;
    int ops = 1 + static_cast<int>(rng.Uniform(5));
    bool txn_alive = true;
    for (int i = 0; i < ops && txn_alive; ++i) {
      int pick = static_cast<int>(rng.Uniform(4));
      if (pick == 0 && pending.size() < kSlots) {  // Insert.
        std::string rec = random_record('I');
        auto rid = (*db)->Insert(*txn, *table, rec);
        ASSERT_TRUE(rid.ok());
        pending[rid->slot] = rec;
      } else if (pick == 1 && !pending.empty()) {  // Delete.
        auto it = pending.begin();
        std::advance(it, rng.Uniform(pending.size()));
        ASSERT_OK((*db)->Delete(*txn, *table, it->first));
        pending.erase(it);
      } else if (pick == 2 && !pending.empty()) {  // Update a field.
        auto it = pending.begin();
        std::advance(it, rng.Uniform(pending.size()));
        uint32_t off = static_cast<uint32_t>(rng.Uniform(kRecSize - 8));
        std::string val = random_record('U').substr(0, 8);
        ASSERT_OK((*db)->Update(*txn, *table, it->first, off, val));
        it->second.replace(off, 8, val);
      } else if (!pending.empty()) {  // Read (exercises precheck/readlog).
        auto it = pending.begin();
        std::advance(it, rng.Uniform(pending.size()));
        std::string got;
        ASSERT_OK((*db)->Read(*txn, *table, it->first, &got));
        ASSERT_EQ(got, it->second);
      }
    }
    // Random outcome: commit / abort / crash-with-txn-open.
    int outcome = static_cast<int>(rng.Uniform(10));
    if (outcome < 6) {
      ASSERT_OK((*db)->Commit(*txn));
      shadow = std::move(pending);
    } else if (outcome < 8) {
      ASSERT_OK((*db)->Abort(*txn));
    } else {
      ASSERT_OK((*db)->CrashAndRecover());  // Open txn dies uncommitted.
    }
    if (rng.OneIn(5)) ASSERT_OK((*db)->Checkpoint());
    if (rng.OneIn(7)) ASSERT_OK((*db)->CrashAndRecover());
    verify();
  }
  // Final paranoia: full audit clean under codeword schemes.
  auto audit = (*db)->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, CrashOracleTest,
    ::testing::Values(OracleParam{ProtectionScheme::kNone, 101},
                      OracleParam{ProtectionScheme::kNone, 202},
                      OracleParam{ProtectionScheme::kDataCodeword, 303},
                      OracleParam{ProtectionScheme::kReadPrecheck, 404},
                      OracleParam{ProtectionScheme::kReadLog, 505},
                      OracleParam{ProtectionScheme::kReadLog, 606},
                      OracleParam{ProtectionScheme::kCodewordReadLog, 707},
                      OracleParam{ProtectionScheme::kHardware, 808}),
    [](const ::testing::TestParamInfo<OracleParam>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// ---------- 2. Delete-history conflict consistency ----------

class DeleteHistoryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeleteHistoryTest, ConflictConsistentDeleteHistory) {
  constexpr uint32_t kRecSize = 128;  // == region size: record == region.
  constexpr uint32_t kSlots = 24;
  TempDir dir;
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kReadLog, kRecSize));
  ASSERT_TRUE(db.ok());

  auto txn0 = (*db)->Begin();
  auto table = (*db)->CreateTable(*txn0, "t", kRecSize, kSlots);
  ASSERT_TRUE(table.ok());
  std::vector<std::string> initial(kSlots);
  for (uint32_t s = 0; s < kSlots; ++s) {
    initial[s] = std::string(kRecSize, static_cast<char>('A' + s));
    ASSERT_TRUE((*db)->Insert(*txn0, *table, initial[s]).ok());
  }
  ASSERT_OK((*db)->Commit(*txn0));
  ASSERT_OK((*db)->Checkpoint());  // Certified clean; sets Audit_SN.

  Random rng(GetParam());

  // Recorded original history Ho (committed transactions only).
  struct HistTxn {
    TxnId id;
    // Reads: slot -> id of the last writer whose value was seen (0 =
    // initial load).
    std::vector<std::pair<uint32_t, TxnId>> reads;
    std::vector<uint32_t> writes;  // Whole-record overwrites.
  };
  std::vector<HistTxn> history;
  std::map<uint32_t, TxnId> last_writer;       // In committed order.
  std::map<uint32_t, std::string> live_value;  // Current committed bytes.
  for (uint32_t s = 0; s < kSlots; ++s) live_value[s] = initial[s];

  uint32_t corrupt_slot = kSlots;  // Not yet corrupted.
  const int kTxns = 40;
  const int corrupt_at = 10 + static_cast<int>(rng.Uniform(15));

  for (int n = 0; n < kTxns; ++n) {
    if (n == corrupt_at) {
      corrupt_slot = static_cast<uint32_t>(rng.Uniform(kSlots));
      FaultInjector inject(db->get(), GetParam() ^ 0xF00D);
      DbPtr off = (*db)->image()->RecordOff(*table, corrupt_slot);
      std::string garbage(16, '\0');
      for (auto& c : garbage) c = static_cast<char>(rng.Next32() | 1);
      inject.WildWriteAt(off + rng.Uniform(kRecSize - 16), garbage);
    }
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    HistTxn h;
    h.id = (*txn)->id();
    int ops = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < ops; ++i) {
      uint32_t src = static_cast<uint32_t>(rng.Uniform(kSlots));
      uint32_t dst = static_cast<uint32_t>(rng.Uniform(kSlots));
      std::string got;
      ASSERT_OK((*db)->Read(*txn, *table, src, &got));
      h.reads.push_back({src, last_writer.count(src) ? last_writer[src] : 0});
      // Whole-record overwrite derived from the read (carries corruption).
      std::string out(kRecSize, static_cast<char>('a' + n % 26));
      out.replace(0, 16, got.substr(0, 16));
      ASSERT_OK((*db)->Update(*txn, *table, dst, 0, out));
      h.writes.push_back(dst);
      live_value[dst] = out;
      last_writer[dst] = h.id;
    }
    ASSERT_OK((*db)->Commit(*txn));
    history.push_back(std::move(h));
  }

  // Detect and recover.
  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  if (report->clean) {
    // The wild write may have been overwritten by later legitimate updates
    // before the audit ran — then there is nothing to recover; skip.
    GTEST_SKIP() << "corruption legitimately overwritten before audit";
  }
  ASSERT_OK((*db)->CrashAndRecover());
  const auto& deleted_vec = (*db)->last_recovery_report().deleted_txns;
  std::set<TxnId> deleted(deleted_vec.begin(), deleted_vec.end());

  // (a) No surviving transaction read from a deleted writer, and every
  // post-corruption-window reader of the corrupt slot was deleted.
  for (const HistTxn& h : history) {
    if (deleted.count(h.id)) continue;
    for (const auto& [slot, writer] : h.reads) {
      EXPECT_FALSE(writer != 0 && deleted.count(writer))
          << "surviving txn " << h.id << " read slot " << slot
          << " from deleted txn " << writer;
      EXPECT_NE(slot, corrupt_slot)
          << "surviving txn " << h.id << " read the corrupted slot";
    }
  }

  // (b) Final bytes of every record = last surviving committed write (or
  // the initial value). Replay the recorded history minus deleted txns.
  std::map<uint32_t, std::string> expected;
  for (uint32_t s = 0; s < kSlots; ++s) expected[s] = initial[s];
  {
    std::map<uint32_t, std::string> value = expected;
    for (const HistTxn& h : history) {
      if (deleted.count(h.id)) continue;
      // Recompute this transaction's writes in the delete history: reads
      // see `value`, writes derive from them exactly as in the original
      // execution (16 bytes of the read + a round tag).
      size_t widx = 0;
      int n = static_cast<int>(&h - history.data());
      for (const auto& [src, writer] : h.reads) {
        (void)writer;
        std::string out(kRecSize, static_cast<char>('a' + n % 26));
        out.replace(0, 16, value[src].substr(0, 16));
        value[h.writes[widx++]] = out;
      }
    }
    expected = std::move(value);
  }
  for (uint32_t s = 0; s < kSlots; ++s) {
    std::string got(
        reinterpret_cast<const char*>(
            (*db)->image()->At((*db)->image()->RecordOff(*table, s))),
        kRecSize);
    EXPECT_EQ(got, expected[s]) << "slot " << s;
  }

  auto audit2 = (*db)->Audit();
  ASSERT_TRUE(audit2.ok());
  EXPECT_TRUE(audit2->clean);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeleteHistoryTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cwdb
