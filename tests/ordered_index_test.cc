// Tests of the transactional B+-tree: ordered semantics against a std::map
// oracle, splits across multiple levels, range scans, lazy deletes, atomic
// rollback with the rest of the transaction, crash recovery, structural
// self-check, and corruption tracing through tree descents.

#include "index/ordered_index.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "faultinject/fault_injector.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

class OrderedIndexTest : public ::testing::Test {
 protected:
  void Open(ProtectionScheme scheme = ProtectionScheme::kDataCodeword) {
    auto db = Database::Open(SmallDbOptions(dir_.path(), scheme, 256));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto idx = OrderedIndex::Create(db_.get(), *txn, "tree", 4096);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    index_ = std::make_unique<OrderedIndex>(std::move(idx).value());
    ASSERT_OK(db_->Commit(*txn));
  }

  void CheckTreeOk() {
    auto txn = db_->Begin();
    auto height = index_->CheckTree(*txn);
    ASSERT_TRUE(height.ok()) << height.status().ToString();
    ASSERT_OK(db_->Commit(*txn));
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<OrderedIndex> index_;
};

TEST_F(OrderedIndexTest, InsertLookupEraseRoundTrip) {
  Open();
  auto txn = db_->Begin();
  ASSERT_OK(index_->Insert(*txn, 42, 420));
  ASSERT_OK(index_->Insert(*txn, 7, 70));
  auto found = index_->Lookup(*txn, 42);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 420u);
  EXPECT_TRUE(index_->Lookup(*txn, 8).status().IsNotFound());
  EXPECT_EQ(index_->Insert(*txn, 42, 1).code(),
            Status::Code::kAlreadyExists);
  ASSERT_OK(index_->Erase(*txn, 42));
  EXPECT_TRUE(index_->Lookup(*txn, 42).status().IsNotFound());
  EXPECT_TRUE(index_->Erase(*txn, 42).IsNotFound());
  ASSERT_OK(db_->Commit(*txn));
  CheckTreeOk();
}

TEST_F(OrderedIndexTest, SplitsGrowTheTree) {
  Open();
  auto txn = db_->Begin();
  // Enough sequential keys to force several levels (fanout 19).
  const uint64_t n = 2000;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_OK(index_->Insert(*txn, k, static_cast<uint32_t>(k * 10)));
  }
  auto height = index_->CheckTree(*txn);
  ASSERT_TRUE(height.ok()) << height.status().ToString();
  EXPECT_GE(*height, 3u);
  auto count = index_->KeyCount(*txn);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, n);
  for (uint64_t k = 0; k < n; k += 97) {
    auto found = index_->Lookup(*txn, k);
    ASSERT_TRUE(found.ok()) << "key " << k;
    EXPECT_EQ(*found, k * 10);
  }
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(OrderedIndexTest, ReverseAndShuffledInsertionOrders) {
  Open();
  auto txn = db_->Begin();
  Random rng(8);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 800; ++k) keys.push_back(k * 3 + 1);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Uniform(i)]);
  }
  for (uint64_t k : keys) {
    ASSERT_OK(index_->Insert(*txn, k, static_cast<uint32_t>(k)));
  }
  ASSERT_OK(db_->Commit(*txn));
  CheckTreeOk();
  txn = db_->Begin();
  auto count = index_->KeyCount(*txn);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, keys.size());
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(OrderedIndexTest, RangeScanExactWindow) {
  Open();
  auto txn = db_->Begin();
  for (uint64_t k = 0; k < 500; k += 5) {
    ASSERT_OK(index_->Insert(*txn, k, static_cast<uint32_t>(k)));
  }
  std::vector<uint64_t> seen;
  ASSERT_OK(index_->Scan(*txn, 123, 300, [&](uint64_t k, uint32_t v) {
    EXPECT_EQ(v, k);
    seen.push_back(k);
    return Status::OK();
  }));
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), 125u);
  EXPECT_EQ(seen.back(), 300u);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
  EXPECT_EQ(seen.size(), (300u - 125u) / 5 + 1);
  // Empty window.
  int hits = 0;
  ASSERT_OK(index_->Scan(*txn, 301, 304, [&](uint64_t, uint32_t) {
    ++hits;
    return Status::OK();
  }));
  EXPECT_EQ(hits, 0);
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(OrderedIndexTest, AbortRollsBackSplitsAndAll) {
  Open();
  auto txn = db_->Begin();
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_OK(index_->Insert(*txn, k, 1));
  }
  ASSERT_OK(db_->Commit(*txn));

  // A transaction that forces deep splits, then aborts.
  txn = db_->Begin();
  for (uint64_t k = 1000; k < 2500; ++k) {
    ASSERT_OK(index_->Insert(*txn, k, 2));
  }
  ASSERT_OK(index_->Erase(*txn, 10));
  ASSERT_OK(db_->Abort(*txn));

  CheckTreeOk();
  txn = db_->Begin();
  auto count = index_->KeyCount(*txn);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 50u);
  EXPECT_TRUE(index_->Lookup(*txn, 10).ok());  // Erase undone.
  EXPECT_TRUE(index_->Lookup(*txn, 1500).status().IsNotFound());
  ASSERT_OK(db_->Commit(*txn));
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST_F(OrderedIndexTest, SurvivesCrashRecovery) {
  Open();
  auto txn = db_->Begin();
  for (uint64_t k = 0; k < 600; ++k) {
    ASSERT_OK(index_->Insert(*txn, k * 2, static_cast<uint32_t>(k)));
  }
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());
  txn = db_->Begin();
  for (uint64_t k = 600; k < 700; ++k) {
    ASSERT_OK(index_->Insert(*txn, k * 2, static_cast<uint32_t>(k)));
  }
  ASSERT_OK(index_->Erase(*txn, 100));
  ASSERT_OK(db_->Commit(*txn));

  ASSERT_OK(db_->CrashAndRecover());
  auto idx = OrderedIndex::Open(db_.get(), "tree");
  ASSERT_TRUE(idx.ok());
  txn = db_->Begin();
  auto height = idx->CheckTree(*txn);
  ASSERT_TRUE(height.ok()) << height.status().ToString();
  auto count = idx->KeyCount(*txn);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 699u);
  EXPECT_TRUE(idx->Lookup(*txn, 100).status().IsNotFound());
  EXPECT_TRUE(idx->Lookup(*txn, 1398).ok());
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(OrderedIndexTest, RandomizedAgainstMapOracle) {
  Open();
  Random rng(1357);
  std::map<uint64_t, uint32_t> oracle;
  auto txn = db_->Begin();
  for (int i = 0; i < 3000; ++i) {
    uint64_t key = rng.Uniform(1200);
    int op = static_cast<int>(rng.Uniform(5));
    if (op <= 1) {
      uint32_t value = rng.Next32();
      Status s = index_->Insert(*txn, key, value);
      if (oracle.count(key)) {
        EXPECT_EQ(s.code(), Status::Code::kAlreadyExists);
      } else {
        ASSERT_OK(s);
        oracle[key] = value;
      }
    } else if (op == 2) {
      Status s = index_->Erase(*txn, key);
      EXPECT_EQ(s.ok(), oracle.erase(key) > 0);
    } else if (op == 3) {
      uint32_t value = rng.Next32();
      Status s = index_->Update(*txn, key, value);
      if (oracle.count(key)) {
        ASSERT_OK(s);
        oracle[key] = value;
      } else {
        EXPECT_TRUE(s.IsNotFound());
      }
    } else {
      auto found = index_->Lookup(*txn, key);
      if (oracle.count(key)) {
        ASSERT_TRUE(found.ok());
        EXPECT_EQ(*found, oracle[key]);
      } else {
        EXPECT_TRUE(found.status().IsNotFound());
      }
    }
    if (i % 500 == 499) {
      ASSERT_OK(db_->Commit(*txn));
      CheckTreeOk();
      txn = db_->Begin();
    }
  }
  // Full ordered comparison.
  std::vector<std::pair<uint64_t, uint32_t>> scanned;
  ASSERT_OK(index_->Scan(*txn, 0, ~0ull, [&](uint64_t k, uint32_t v) {
    scanned.push_back({k, v});
    return Status::OK();
  }));
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_EQ(scanned.size(), oracle.size());
  size_t i = 0;
  for (const auto& [k, v] : oracle) {
    EXPECT_EQ(scanned[i].first, k);
    EXPECT_EQ(scanned[i].second, v);
    ++i;
  }
}

TEST_F(OrderedIndexTest, CorruptionTracedThroughDescent) {
  Open(ProtectionScheme::kReadLog);
  auto idx = OrderedIndex::Open(db_.get(), "tree");
  ASSERT_TRUE(idx.ok());
  auto data_setup = db_->Begin();
  auto data = db_->CreateTable(*data_setup, "data", 64, 64);
  ASSERT_TRUE(data.ok());
  auto out = db_->Insert(*data_setup, *data, std::string(64, 'o'));
  ASSERT_TRUE(out.ok());
  for (uint64_t k = 0; k < 400; ++k) {
    ASSERT_OK(idx->Insert(*data_setup, k, static_cast<uint32_t>(k)));
  }
  ASSERT_OK(db_->Commit(*data_setup));
  ASSERT_OK(db_->Checkpoint());

  // Smash an internal region of the node table (the tree's own bytes).
  FaultInjector inject(db_.get(), 77);
  DbPtr node_bytes = db_->image()->RecordOff(idx->nodes_table(), 0) + 32;
  inject.WildWriteAt(node_bytes, "\xA5\xA5\xA5\xA5");

  // A transaction performs a lookup that traverses the corrupt node and
  // writes a result derived from it.
  auto txn = db_->Begin();
  TxnId navigator = (*txn)->id();
  // The lookup traverses the corrupt leaf; whether it finds the key or
  // returns garbage/NotFound, the corrupt bytes were READ (and logged).
  auto found = idx->Lookup(*txn, 3);  // Leaf 0 holds the smallest keys.
  (void)found;
  ASSERT_OK(db_->Update(*txn, *data, out->slot, 0, "derived"));
  ASSERT_OK(db_->Commit(*txn));

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  ASSERT_OK(db_->CrashAndRecover());
  const auto& deleted = db_->last_recovery_report().deleted_txns;
  EXPECT_NE(std::find(deleted.begin(), deleted.end(), navigator),
            deleted.end());
  // Tree restored and structurally sound.
  auto idx2 = OrderedIndex::Open(db_.get(), "tree");
  ASSERT_TRUE(idx2.ok());
  txn = db_->Begin();
  auto height = idx2->CheckTree(*txn);
  ASSERT_TRUE(height.ok()) << height.status().ToString();
  auto count = idx2->KeyCount(*txn);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 400u);
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(OrderedIndexTest, CheckTreeDiagnosesCorruptNode) {
  Open(ProtectionScheme::kNone);
  auto idx = OrderedIndex::Open(db_.get(), "tree");
  ASSERT_TRUE(idx.ok());
  auto txn = db_->Begin();
  for (uint64_t k = 0; k < 300; ++k) {
    ASSERT_OK(idx->Insert(*txn, k, 1));
  }
  ASSERT_OK(db_->Commit(*txn));

  // Scramble a node's key area out of order.
  DbPtr node0 = db_->image()->RecordOff(idx->nodes_table(), 0);
  uint64_t huge = ~0ull;
  std::memcpy(db_->UnsafeRawBase() + node0 + 8, &huge, 8);
  txn = db_->Begin();
  auto check = idx->CheckTree(*txn);
  EXPECT_TRUE(check.status().IsCorruption()) << "scramble went unnoticed";
  ASSERT_OK(db_->Abort(*txn));
}

}  // namespace
}  // namespace cwdb
