// Contract tests of the prescribed update interface and facade: invariant
// violations abort (death tests), bounds are enforced, the checkpoint
// latch excludes in-flight updates, and independent databases coexist in
// one process.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/database.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

class InterfaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 64, 16);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    auto rid = db_->Insert(*txn, table_, std::string(64, 'c'));
    ASSERT_TRUE(rid.ok());
    slot_ = rid->slot;
    ASSERT_OK(db_->Commit(*txn));
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
  uint32_t slot_ = 0;
};

using InterfaceDeathTest = InterfaceTest;

TEST_F(InterfaceDeathTest, NestedBeginUpdateAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto txn = db_->Begin();
  DbPtr off = db_->image()->RecordOff(table_, slot_);
  ASSERT_OK(db_->txns()->BeginOp(*txn, OpCode::kUpdate, kMaxTables,
                                 kInvalidSlot, std::nullopt, off, 8));
  ASSERT_TRUE((*txn)->BeginUpdate(off, 8).ok());
  EXPECT_DEATH((void)(*txn)->BeginUpdate(off + 8, 8), "nested BeginUpdate");
}

TEST_F(InterfaceDeathTest, EndUpdateWithoutBeginAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto txn = db_->Begin();
  EXPECT_DEATH((void)(*txn)->EndUpdate(), "EndUpdate without BeginUpdate");
}

TEST_F(InterfaceDeathTest, UpdateOutsideOperationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto txn = db_->Begin();
  DbPtr off = db_->image()->RecordOff(table_, slot_);
  EXPECT_DEATH((void)(*txn)->BeginUpdate(off, 8),
               "update outside an operation");
}

TEST_F(InterfaceDeathTest, CommitWithOpenOperationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto txn = db_->Begin();
  ASSERT_OK(db_->txns()->BeginOp(*txn, OpCode::kUpdate, table_, slot_,
                                 std::nullopt));
  EXPECT_DEATH((void)db_->Commit(*txn), "operation or update in flight");
}

TEST_F(InterfaceTest, UpdateBoundsEnforced) {
  auto txn = db_->Begin();
  ASSERT_OK(db_->txns()->BeginOp(*txn, OpCode::kUpdate, kMaxTables,
                                 kInvalidSlot, std::nullopt, 0, 8));
  EXPECT_FALSE((*txn)->BeginUpdate(db_->arena_size(), 8).ok());
  EXPECT_FALSE((*txn)->BeginUpdate(db_->arena_size() - 4, 8).ok());
  EXPECT_FALSE((*txn)->BeginUpdate(0, 0).ok());  // Zero length.
  ASSERT_OK(db_->txns()->AbortOp(*txn));
  ASSERT_OK(db_->Abort(*txn));
}

TEST_F(InterfaceTest, ReadBoundsEnforced) {
  auto txn = db_->Begin();
  char buf[8];
  EXPECT_FALSE((*txn)->Read(db_->arena_size(), buf, 8).ok());
  EXPECT_FALSE((*txn)->Read(db_->arena_size() - 4, buf, 8).ok());
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(InterfaceTest, CheckpointBlocksOnInFlightUpdate) {
  auto txn = db_->Begin();
  DbPtr off = db_->image()->RecordOff(table_, slot_);
  ASSERT_OK(db_->txns()->BeginOp(*txn, OpCode::kUpdate, kMaxTables,
                                 kInvalidSlot, std::nullopt, off, 8));
  auto p = (*txn)->BeginUpdate(off, 8);
  ASSERT_TRUE(p.ok());

  std::atomic<bool> ckpt_done{false};
  std::thread ckpt([&] {
    EXPECT_OK(db_->Checkpoint());
    ckpt_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The checkpoint copy phase must wait for the update window to close —
  // that is what makes checkpoints update-consistent.
  EXPECT_FALSE(ckpt_done.load());

  std::memcpy(*p, "FINISHED", 8);
  ASSERT_OK((*txn)->EndUpdate());
  LogicalUndo undo;
  undo.code = UndoCode::kWriteRaw;
  undo.raw_off = off;
  undo.payload = std::string(8, 'c');
  ASSERT_OK(db_->txns()->CommitOp(*txn, undo));
  ckpt.join();
  EXPECT_TRUE(ckpt_done.load());
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(InterfaceTest, OperationAbortDiscardsItsEffects) {
  auto txn = db_->Begin();
  DbPtr off = db_->image()->RecordOff(table_, slot_);
  ASSERT_OK(db_->txns()->BeginOp(*txn, OpCode::kUpdate, kMaxTables,
                                 kInvalidSlot, std::nullopt, off, 8));
  ASSERT_OK((*txn)->Update(off, "ZZZZZZZZ", 8));
  ASSERT_OK(db_->txns()->AbortOp(*txn));
  // The operation's update is gone, the transaction is still usable.
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slot_, &got));
  EXPECT_EQ(got, std::string(64, 'c'));
  ASSERT_OK(db_->Commit(*txn));
  // Codewords stayed consistent through the unlogged restore.
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST(MultiDb, IndependentDatabasesCoexist) {
  TempDir dir_a, dir_b;
  auto a = Database::Open(
      SmallDbOptions(dir_a.path(), ProtectionScheme::kHardware));
  auto b = Database::Open(
      SmallDbOptions(dir_b.path(), ProtectionScheme::kReadPrecheck, 64));
  ASSERT_TRUE(a.ok() && b.ok());

  auto ta = (*a)->Begin();
  auto tb = (*b)->Begin();
  auto table_a = (*a)->CreateTable(*ta, "shared_name", 32, 8);
  auto table_b = (*b)->CreateTable(*tb, "shared_name", 48, 8);
  ASSERT_TRUE(table_a.ok() && table_b.ok());
  ASSERT_TRUE((*a)->Insert(*ta, *table_a, std::string(32, 'A')).ok());
  ASSERT_TRUE((*b)->Insert(*tb, *table_b, std::string(48, 'B')).ok());
  ASSERT_OK((*a)->Commit(*ta));
  ASSERT_OK((*b)->Commit(*tb));

  EXPECT_EQ((*a)->CountRecords(*table_a), 1u);
  EXPECT_EQ((*b)->CountRecords(*table_b), 1u);
  ASSERT_OK((*a)->CrashAndRecover());
  EXPECT_EQ((*a)->CountRecords(*(*a)->FindTable("shared_name")), 1u);
  EXPECT_EQ((*b)->CountRecords(*table_b), 1u);  // Untouched by a's crash.
}

}  // namespace
}  // namespace cwdb
