// Unit tests for the common primitives: codeword arithmetic (the paper's
// XOR parity scheme and its incremental maintenance), CRC32C, binary
// coding, Status/Result, the interval set, latches and the PRNG.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/codeword.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/latch.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "recovery/interval_set.h"

namespace cwdb {
namespace {

// ---------- Codeword arithmetic ----------

TEST(Codeword, ZeroBufferHasZeroCodeword) {
  std::vector<uint8_t> buf(64, 0);
  EXPECT_EQ(CodewordCompute(buf.data(), buf.size()), 0u);
}

TEST(Codeword, SingleWord) {
  uint32_t w = 0xDEADBEEF;
  EXPECT_EQ(CodewordCompute(&w, 4), 0xDEADBEEFu);
}

TEST(Codeword, TwoEqualWordsCancel) {
  uint32_t w[2] = {0xDEADBEEF, 0xDEADBEEF};
  EXPECT_EQ(CodewordCompute(w, 8), 0u);
}

TEST(Codeword, BitIIsParityOfBitI) {
  // Three words; bit 5 set in exactly two of them => parity 0; bit 7 set in
  // one => parity 1.
  uint32_t w[3] = {1u << 5, (1u << 5) | (1u << 7), 0};
  codeword_t cw = CodewordCompute(w, 12);
  EXPECT_EQ(cw & (1u << 5), 0u);
  EXPECT_EQ(cw & (1u << 7), 1u << 7);
}

TEST(Codeword, TailBytesTreatedAsZeroPadded) {
  uint8_t buf[6] = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66};
  uint8_t padded[8] = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0, 0};
  EXPECT_EQ(CodewordCompute(buf, 6), CodewordCompute(padded, 8));
}

TEST(Codeword, FoldMatchesComputeAtLaneZero) {
  Random rng(7);
  std::vector<uint8_t> buf(128);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next32());
  EXPECT_EQ(CodewordFold(0, buf.data(), buf.size()),
            CodewordCompute(buf.data(), buf.size()));
}

// The core maintenance property: for any region, any in-region update,
// cw(after-image) == cw(before-image) ^ delta(before,after).
class CodewordDeltaProperty : public ::testing::TestWithParam<int> {};

TEST_P(CodewordDeltaProperty, IncrementalMaintenanceMatchesRecompute) {
  const int region_size = 64;
  Random rng(GetParam());
  std::vector<uint8_t> region(region_size);
  for (auto& b : region) b = static_cast<uint8_t>(rng.Next32());

  for (int iter = 0; iter < 200; ++iter) {
    codeword_t cw = CodewordCompute(region.data(), region_size);
    size_t off = rng.Uniform(region_size);
    size_t len = 1 + rng.Uniform(region_size - off);
    std::vector<uint8_t> before(region.begin() + off,
                                region.begin() + off + len);
    std::vector<uint8_t> after(len);
    for (auto& b : after) b = static_cast<uint8_t>(rng.Next32());

    codeword_t delta = CodewordDelta(off & 3, before.data(), after.data(),
                                     len);
    std::memcpy(region.data() + off, after.data(), len);
    EXPECT_EQ(cw ^ delta, CodewordCompute(region.data(), region_size))
        << "iter " << iter << " off " << off << " len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodewordDeltaProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Codeword, DeltaOfIdenticalImagesIsZero) {
  uint8_t buf[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  EXPECT_EQ(CodewordDelta(2, buf, buf, 16), 0u);
}

TEST(Codeword, FoldRespectsLanes) {
  // The same byte at different lane offsets lands in different lanes.
  uint8_t b = 0xAB;
  EXPECT_EQ(CodewordFold(0, &b, 1), 0x000000ABu);
  EXPECT_EQ(CodewordFold(1, &b, 1), 0x0000AB00u);
  EXPECT_EQ(CodewordFold(2, &b, 1), 0x00AB0000u);
  EXPECT_EQ(CodewordFold(3, &b, 1), 0xAB000000u);
  EXPECT_EQ(CodewordFold(4, &b, 1), 0x000000ABu);  // Lane wraps mod 4.
}

TEST(Codeword, SingleBitFlipAlwaysChangesCodeword) {
  Random rng(99);
  std::vector<uint8_t> region(512);
  for (auto& b : region) b = static_cast<uint8_t>(rng.Next32());
  codeword_t cw = CodewordCompute(region.data(), region.size());
  for (int i = 0; i < 100; ++i) {
    size_t byte = rng.Uniform(region.size());
    uint8_t bit = static_cast<uint8_t>(1u << rng.Uniform(8));
    region[byte] ^= bit;
    EXPECT_NE(CodewordCompute(region.data(), region.size()), cw);
    region[byte] ^= bit;  // Restore.
  }
}

// ---------- CRC32C ----------

TEST(Crc32c, KnownVector) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, ExtendMatchesOneShot) {
  const char* data = "hello, checkpointed world";
  size_t n = std::strlen(data);
  uint32_t one = Crc32c(data, n);
  uint32_t two = Crc32cExtend(Crc32c(data, 10), data + 10, n - 10);
  EXPECT_EQ(one, two);
}

TEST(Crc32c, SensitiveToSingleBit) {
  std::string a = "payload";
  std::string b = a;
  b[3] = static_cast<char>(b[3] ^ 0x10);
  EXPECT_NE(Crc32c(a.data(), a.size()), Crc32c(b.data(), b.size()));
}

// ---------- Coding ----------

TEST(Coding, FixedRoundTrip) {
  std::string buf;
  PutFixed8(&buf, 0xAB);
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  PutLengthPrefixed(&buf, "hello");
  Decoder dec(buf);
  EXPECT_EQ(dec.GetFixed8(), 0xAB);
  EXPECT_EQ(dec.GetFixed16(), 0xBEEF);
  EXPECT_EQ(dec.GetFixed32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetFixed64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetLengthPrefixed().ToString(), "hello");
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(Coding, TruncatedInputSetsNotOk) {
  std::string buf;
  PutFixed32(&buf, 7);
  Decoder dec(buf);
  dec.GetFixed64();  // Needs 8, has 4.
  EXPECT_FALSE(dec.ok());
}

TEST(Coding, LengthPrefixedTruncation) {
  std::string buf;
  PutFixed32(&buf, 100);  // Claims 100 bytes, provides none.
  Decoder dec(buf);
  Slice s = dec.GetLengthPrefixed();
  EXPECT_FALSE(dec.ok());
  EXPECT_TRUE(s.empty());
}

// ---------- Status / Result ----------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::Corruption("region 5");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "Corruption: region 5");
}

TEST(Result, Value) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, Error) {
  Result<int> r = Status::NotFound("x");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> Doubler(Result<int> in) {
  CWDB_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_TRUE(Doubler(Status::Busy("nope")).status().code() ==
              Status::Code::kBusy);
}

// ---------- IntervalSet (CorruptDataTable) ----------

TEST(IntervalSet, EmptyOverlapsNothing) {
  IntervalSet s;
  EXPECT_FALSE(s.Overlaps(0, 100));
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, BasicInsertAndOverlap) {
  IntervalSet s;
  s.Insert(100, 50);
  EXPECT_TRUE(s.Overlaps(100, 1));
  EXPECT_TRUE(s.Overlaps(149, 1));
  EXPECT_FALSE(s.Overlaps(150, 1));
  EXPECT_FALSE(s.Overlaps(0, 100));
  EXPECT_TRUE(s.Overlaps(0, 101));
  EXPECT_TRUE(s.Overlaps(140, 100));
}

TEST(IntervalSet, CoalescesAdjacent) {
  IntervalSet s;
  s.Insert(0, 10);
  s.Insert(10, 10);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TotalBytes(), 20u);
}

TEST(IntervalSet, CoalescesOverlapping) {
  IntervalSet s;
  s.Insert(0, 10);
  s.Insert(5, 20);
  s.Insert(100, 5);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.TotalBytes(), 30u);
}

TEST(IntervalSet, InsertSwallowingMultiple) {
  IntervalSet s;
  s.Insert(10, 5);
  s.Insert(30, 5);
  s.Insert(50, 5);
  s.Insert(0, 100);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TotalBytes(), 100u);
}

TEST(IntervalSet, ZeroLengthIgnored) {
  IntervalSet s;
  s.Insert(10, 0);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Overlaps(10, 0));
}

TEST(IntervalSet, RandomizedAgainstBitsetOracle) {
  Random rng(1234);
  IntervalSet s;
  std::vector<bool> oracle(2000, false);
  for (int i = 0; i < 500; ++i) {
    uint64_t off = rng.Uniform(1900);
    uint64_t len = 1 + rng.Uniform(100);
    if (rng.OneIn(2)) {
      s.Insert(off, len);
      for (uint64_t j = off; j < off + len; ++j) oracle[j] = true;
    } else {
      bool expect = false;
      for (uint64_t j = off; j < off + len && j < oracle.size(); ++j) {
        expect = expect || oracle[j];
      }
      EXPECT_EQ(s.Overlaps(off, len), expect) << off << "+" << len;
    }
  }
}

// ---------- Latches ----------

TEST(Latch, SharedAllowsConcurrentReaders) {
  Latch latch;
  latch.LockShared();
  EXPECT_FALSE(latch.TryLockExclusive());
  latch.LockShared();  // Second shared acquisition (different "reader").
  latch.UnlockShared();
  latch.UnlockShared();
  EXPECT_TRUE(latch.TryLockExclusive());
  latch.UnlockExclusive();
}

TEST(StripedLatchTable, StableMapping) {
  StripedLatchTable t(64);
  for (uint64_t r = 0; r < 1000; ++r) {
    EXPECT_EQ(t.StripeOf(r), t.StripeOf(r));
    EXPECT_LT(t.StripeOf(r), 64u);
  }
}

TEST(StripedLatchTable, ExclusionUnderContention) {
  StripedLatchTable t(8);
  int counter = 0;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t, &counter] {
      for (int j = 0; j < 1000; ++j) {
        ExclusiveGuard guard(t.LatchFor(42));
        ++counter;  // Protected by the stripe latch.
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4000);
}

// ---------- Random ----------

TEST(Random, DeterministicForSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, UniformInRange) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

}  // namespace
}  // namespace cwdb
