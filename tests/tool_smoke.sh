#!/bin/sh
# Smoke test for cwdb_ctl: build a small database with the quickstart
# example, then exercise every read-only subcommand plus recover.
set -e

QUICKSTART="$1"
CTL="$2"
DIR=$(mktemp -d /dev/shm/cwdb_tool_smoke_XXXXXX)
trap 'rm -rf "$DIR"' EXIT

"$QUICKSTART" "$DIR/db" > /dev/null

"$CTL" info "$DIR/db" | grep -q "active checkpoint"
"$CTL" tables "$DIR/db" | grep -q "users"
"$CTL" check "$DIR/db" | grep -q "image layout     : ok"
"$CTL" logdump "$DIR/db" | grep -q "COMMIT_TXN"
"$CTL" logdump "$DIR/db" | grep -q "end of valid log"
"$CTL" recover "$DIR/db" readlog | grep -q "recovery complete"

# stats re-emits the metrics snapshot quickstart's Close() persisted.
"$CTL" stats "$DIR/db" | grep -q '"txn.commits"'
"$CTL" stats "$DIR/db" | grep -q '"txn.commit_latency_ns"'

# Unknown command fails with usage.
if "$CTL" bogus "$DIR/db" 2> /dev/null; then
  echo "bogus subcommand should fail" >&2
  exit 1
fi
echo "tool smoke OK"
