#!/bin/sh
# Smoke test for cwdb_ctl: build a small database with the quickstart
# example, then exercise every read-only subcommand plus recover. The
# corruption_forensics example provides a directory with an incident
# dossier and a recovery provenance graph for the forensics subcommands.
set -e

QUICKSTART="$1"
CTL="$2"
FORENSICS="$3"
DIR=$(mktemp -d /dev/shm/cwdb_tool_smoke_XXXXXX)
trap 'rm -rf "$DIR"' EXIT

"$QUICKSTART" "$DIR/db" > /dev/null

"$CTL" info "$DIR/db" | grep -q "active checkpoint"
"$CTL" tables "$DIR/db" | grep -q "users"
"$CTL" check "$DIR/db" | grep -q "image layout     : ok"
"$CTL" logdump "$DIR/db" | grep -q "COMMIT_TXN"
"$CTL" logdump "$DIR/db" | grep -q "end of valid log"
"$CTL" recover "$DIR/db" readlog | grep -q "recovery complete"

# stats re-emits the metrics snapshot quickstart's Close() persisted,
# including the process gauges sampled at dump time.
"$CTL" stats "$DIR/db" | grep -q '"txn.commits"'
"$CTL" stats "$DIR/db" | grep -q '"txn.commit_latency_ns"'
"$CTL" stats "$DIR/db" | grep -q '"process.rss_bytes"'
"$CTL" stats "$DIR/db" | grep -q '"process.data_dir_bytes"'

# --per-shard renders one row per engine shard from the same snapshot.
"$CTL" stats "$DIR/db" --per-shard | grep -q "wal_appends"
"$CTL" stats "$DIR/db" --per-shard | grep -q "^0 "

# trace decodes the flight-recorder events of the same snapshot.
"$CTL" trace "$DIR/db" | grep -q "checkpoint"
"$CTL" trace "$DIR/db" | grep -q "group_commit_flush"

# top renders the metrics-history ring quickstart persisted on Close;
# scrub-map renders audit staleness from the same snapshot's gauges.
"$CTL" top "$DIR/db" --once | grep -q "cwdb top"
"$CTL" top "$DIR/db" --once | grep -q "commit rate"
"$CTL" scrub-map "$DIR/db" | grep -q "shard"

# A clean database has no dossiers and a cleanly-marked black box.
"$CTL" incidents "$DIR/db" | grep -q "no incidents recorded"
"$CTL" postmortem "$DIR/db" | grep -q "clean shutdown; no crash recorded"

# A process killed at an armed crash point leaves an unclean black box;
# postmortem renders it cold, the next open rotates it and files a crash
# dossier, and postmortem then renders the rotated box + dossier episode.
CWDB_CRASHPOINT="wal.flush.fdatasync=abort" "$QUICKSTART" "$DIR/crashdb" \
  > /dev/null 2>&1 || true
"$CTL" postmortem "$DIR/crashdb" | grep -q "UNCLEAN"
"$CTL" postmortem "$DIR/crashdb" | grep -q "wal.flush.fdatasync"
"$CTL" recover "$DIR/crashdb" > /dev/null
"$CTL" postmortem "$DIR/crashdb" | grep -q "blackbox.prev.bin"
"$CTL" postmortem "$DIR/crashdb" | grep -q "crash dossier"
"$CTL" incidents "$DIR/crashdb" | grep -q "source=crash"

# The forensics walkthrough leaves an incident dossier and a recovery
# provenance graph behind; the forensics subcommands must decode both.
if [ -n "$FORENSICS" ]; then
  "$FORENSICS" "$DIR/fdb" > /dev/null
  "$CTL" incidents "$DIR/fdb" | grep -q "source=audit"
  "$CTL" incidents "$DIR/fdb" | grep -q "delta=0x"
  "$CTL" explain-recovery "$DIR/fdb" | grep -q "deleted transactions:"
  "$CTL" explain-recovery "$DIR/fdb" | grep -q "tainted by txn"
  "$CTL" explain-recovery "$DIR/fdb" --dot \
    | grep -q "digraph recovery_provenance"
fi

# Unknown command fails with usage.
if "$CTL" bogus "$DIR/db" 2> /dev/null; then
  echo "bogus subcommand should fail" >&2
  exit 1
fi
echo "tool smoke OK"
