// Fault-injection campaigns: statistical detection coverage of the
// codeword schemes against randomized addressing errors (wild writes, copy
// overruns, bit flips), qualitatively reproducing the Ng & Chen
// observation the paper cites (§4, [16]): hardware protection alone leaves
// a residual corruption risk, while codeword audits detect essentially all
// random corruption of protected data.

#include "faultinject/fault_injector.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

class FaultCampaignTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void Open(ProtectionScheme scheme) {
    auto db =
        Database::Open(SmallDbOptions(dir_.path(), scheme, GetParam()));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    // Fill part of the image with committed data.
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 100, 2000);
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(db_->Insert(*txn, *t, std::string(100, 'a' + i % 26)).ok());
    }
    ASSERT_OK(db_->Commit(*txn));
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_P(FaultCampaignTest, EveryBitChangingWildWriteIsAuditDetected) {
  Open(ProtectionScheme::kDataCodeword);
  FaultInjector inject(db_.get(), 12345);
  int detected = 0, landed = 0;
  for (int i = 0; i < 50; ++i) {
    auto outcome = inject.WildWrite(/*max_len=*/64);
    ASSERT_FALSE(outcome.prevented);
    if (!outcome.changed_bits) continue;
    ++landed;
    std::vector<CorruptRange> corrupt;
    Status s = db_->protection()->AuditRange(outcome.off, outcome.len,
                                             &corrupt);
    if (s.IsCorruption()) ++detected;
    // Repair in place so faults are judged independently: region-align the
    // corrupted range and clamp to the arena.
    uint64_t region = GetParam();
    uint64_t start = outcome.off & ~(region - 1);
    uint64_t end = std::min<uint64_t>(
        (outcome.off + outcome.len + region - 1) & ~(region - 1),
        db_->arena_size());
    ASSERT_OK(db_->CacheRecover({CorruptRange{start, end - start}}));
  }
  ASSERT_GT(landed, 20);
  // Random garbage writes essentially never cancel in the XOR parity.
  EXPECT_EQ(detected, landed);
}

TEST_P(FaultCampaignTest, BitFlipsAlwaysDetected) {
  // A single flipped bit flips exactly one parity bit: detection is
  // certain, not merely probable.
  Open(ProtectionScheme::kDataCodeword);
  FaultInjector inject(db_.get(), 777);
  for (int i = 0; i < 30; ++i) {
    auto outcome = inject.BitFlip();
    ASSERT_TRUE(outcome.changed_bits);
    std::vector<CorruptRange> corrupt;
    EXPECT_TRUE(db_->protection()
                    ->AuditRange(outcome.off, 1, &corrupt)
                    .IsCorruption());
    ASSERT_OK(db_->CacheRecover(
        {CorruptRange{outcome.off & ~uint64_t{GetParam() - 1}, GetParam()}}));
  }
}

TEST_P(FaultCampaignTest, CopyOverrunClobbersNeighborAndIsDetected) {
  Open(ProtectionScheme::kDataCodeword);
  FaultInjector inject(db_.get(), 55);
  auto t = db_->FindTable("t");
  ASSERT_TRUE(t.ok());
  // Overrun record 10 by 40 bytes: lands in record 11.
  auto outcome = inject.CopyOverrun(*t, 10, 40);
  ASSERT_FALSE(outcome.prevented);
  DbPtr neighbor = db_->image()->RecordOff(*t, 11);
  std::vector<CorruptRange> corrupt;
  EXPECT_TRUE(
      db_->protection()->AuditRange(neighbor, 40, &corrupt).IsCorruption());
}

INSTANTIATE_TEST_SUITE_P(Regions, FaultCampaignTest,
                         ::testing::Values(64u, 512u, 4096u),
                         [](const auto& info) {
                           std::string name = "r";
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(FaultCampaign, HardwarePreventsAllQuiescentWildWrites) {
  TempDir dir;
  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kHardware));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 100, 500);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*db)->Insert(*txn, *t, std::string(100, 'h')).ok());
  }
  ASSERT_OK((*db)->Commit(*txn));

  FaultInjector inject(db->get(), 31337);
  auto outcomes = inject.Campaign(100, 64);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.prevented) << "wild write landed at " << o.off;
    EXPECT_FALSE(o.changed_bits);
  }
}

TEST(FaultCampaign, BaselineSilentlyAcceptsCorruption) {
  // The control group: without protection, wild writes land and nothing
  // notices — exactly the paper's motivation.
  TempDir dir;
  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kNone));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 100, 100);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(100, 'b'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));

  FaultInjector inject(db->get(), 1);
  auto outcome =
      inject.WildWriteAt((*db)->image()->RecordOff(*t, rid->slot), "BOOM");
  EXPECT_FALSE(outcome.prevented);
  EXPECT_TRUE(outcome.changed_bits);
  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean);  // Vacuously: nothing to compare against.
  txn = (*db)->Begin();
  std::string got;
  ASSERT_OK((*db)->Read(*txn, *t, rid->slot, &got));
  EXPECT_EQ(got.substr(0, 4), "BOOM");  // Corruption served to readers.
  ASSERT_OK((*db)->Commit(*txn));
}

TEST(FaultCampaign, ExposureWindowResidualRiskUnderWorkload) {
  // Reproduces the qualitative Ng & Chen finding: under hardware
  // protection, faults that strike while pages are legitimately exposed
  // can still corrupt data. We interleave wild writes aimed at the page of
  // a record that a transaction currently has exposed.
  TempDir dir;
  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kHardware));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 100, 200);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(100, 'n'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));

  DbPtr off = (*db)->image()->RecordOff(*t, rid->slot);
  txn = (*db)->Begin();
  ASSERT_OK((*db)->txns()->BeginOp(*txn, OpCode::kUpdate, kMaxTables,
                                   kInvalidSlot, std::nullopt, off, 8));
  auto p = (*txn)->BeginUpdate(off, 8);
  ASSERT_TRUE(p.ok());
  FaultInjector inject(db->get(), 2);
  // Strike within the exposed page, outside the declared update range.
  auto outcome = inject.WildWriteAt(off + 64, "SNEAK");
  EXPECT_FALSE(outcome.prevented);  // The residual risk.
  EXPECT_TRUE(outcome.changed_bits);
  std::memcpy(*p, "LEGITOK!", 8);
  ASSERT_OK((*txn)->EndUpdate());
  LogicalUndo undo;
  undo.code = UndoCode::kWriteRaw;
  undo.raw_off = off;
  undo.payload = std::string(8, 'n');
  ASSERT_OK((*db)->txns()->CommitOp(*txn, undo));
  ASSERT_OK((*db)->Commit(*txn));
}

// --- Measured detection latency per scheme ---
//
// The FaultInjector stamps every corrupting write in the registry's
// pending-fault set; whichever layer later implicates the range (audit,
// read precheck, hardware trap) retires it into the
// `protect.detection_latency_ns` histogram. These tests assert each
// scheme produces a non-zero, bounded measurement — the quantity Table 3
// of the paper reasons about qualitatively.

// Anything the test harness measures should finish well inside a minute.
constexpr uint64_t kLatencyBoundNs = 60ull * 1000 * 1000 * 1000;

Histogram::Snapshot DetectionLatency(Database* db) {
  return db->metrics()->histogram("protect.detection_latency_ns")->Capture();
}

TEST(DetectionLatency, AuditDetectionMeasuredUnderDataCodeword) {
  TempDir dir;
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 100, 100);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(100, 'a'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));

  FaultInjector inject(db->get(), 4242);
  auto outcome =
      inject.WildWriteAt((*db)->image()->RecordOff(*t, rid->slot), "GARB");
  ASSERT_TRUE(outcome.changed_bits);
  ASSERT_EQ(DetectionLatency(db->get()).count, 0u);  // Not yet noticed.

  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean);
  Histogram::Snapshot lat = DetectionLatency(db->get());
  EXPECT_GE(lat.count, 1u);
  EXPECT_GE(lat.min, 1u);
  EXPECT_LT(lat.max, kLatencyBoundNs);
}

TEST(DetectionLatency, ReadPrecheckDetectionMeasured) {
  TempDir dir;
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kReadPrecheck));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 100, 100);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(100, 'p'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));

  FaultInjector inject(db->get(), 4242);
  auto outcome =
      inject.WildWriteAt((*db)->image()->RecordOff(*t, rid->slot), "GARB");
  ASSERT_TRUE(outcome.changed_bits);

  // The next read of the record prechecks its region — read-time detection
  // (§3.1) — and the detection latency is stamped at that moment. The lone
  // corrupt region is then reconstructed from its parity group, so the
  // read itself succeeds with the original bytes.
  txn = (*db)->Begin();
  std::string got;
  ASSERT_OK((*db)->Read(*txn, *t, rid->slot, &got));
  EXPECT_EQ(got, std::string(100, 'p'));
  ASSERT_OK((*db)->Abort(*txn));
  Histogram::Snapshot lat = DetectionLatency(db->get());
  EXPECT_GE(lat.count, 1u);
  EXPECT_GE(lat.min, 1u);
  EXPECT_LT(lat.max, kLatencyBoundNs);
}

TEST(DetectionLatency, HardwarePreventionMeasuredImmediately) {
  TempDir dir;
  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kHardware));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 100, 100);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(100, 'h'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));

  FaultInjector inject(db->get(), 4242);
  auto outcome =
      inject.WildWriteAt((*db)->image()->RecordOff(*t, rid->slot), "GARB");
  EXPECT_TRUE(outcome.prevented);
  // Prevention IS detection: the latency sample is taken at the trap.
  Histogram::Snapshot lat = DetectionLatency(db->get());
  EXPECT_GE(lat.count, 1u);
  EXPECT_GE(lat.min, 1u);
  EXPECT_LT(lat.max, kLatencyBoundNs);
}

}  // namespace
}  // namespace cwdb
