#ifndef CWDB_TESTS_TEST_UTIL_H_
#define CWDB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/database.h"

namespace cwdb {

#define ASSERT_OK(expr)                                      \
  do {                                                       \
    ::cwdb::Status _s = (expr);                              \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();     \
  } while (0)

#define EXPECT_OK(expr)                                      \
  do {                                                       \
    ::cwdb::Status _s = (expr);                              \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();     \
  } while (0)

/// Creates (and removes on destruction) a unique temp directory per test.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/dev/shm/cwdb_test_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path_ = p;
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = ::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Small options for fast tests: 4 MiB arena, 4 KiB pages.
inline DatabaseOptions SmallDbOptions(const std::string& path,
                                      ProtectionScheme scheme,
                                      uint32_t region_size = 512) {
  DatabaseOptions opts;
  opts.path = path;
  opts.arena_size = 4ull << 20;
  opts.page_size = 4096;
  opts.protection.scheme = scheme;
  opts.protection.region_size = region_size;
  return opts;
}

}  // namespace cwdb

#endif  // CWDB_TESTS_TEST_UTIL_H_
