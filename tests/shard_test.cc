// Concurrency tests for the sharded engine: ShardMap geometry, the
// lock-free MPMC queue under producer/consumer races, the segmented lock
// manager (contention, upgrades, cross-segment deadlocks, hot-key
// convoys), the sharded WAL under concurrent append/flush, and whole-
// database invariants for transactions that span shard boundaries —
// including atomicity across a crash and across injected commit-time I/O
// failures. These are the tests the CI TSan job runs to vet the
// memory-ordering arguments in DESIGN.md §10.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/crashpoint.h"
#include "common/random.h"
#include "storage/shard_map.h"
#include "tests/test_util.h"
#include "txn/lock_manager.h"
#include "wal/mpmc_queue.h"
#include "wal/system_log.h"

namespace cwdb {
namespace {

// ---------------------------------------------------------------------------
// ShardMap geometry.
// ---------------------------------------------------------------------------

TEST(ShardMap, EvenPartitionCoversArenaExactly) {
  const uint64_t align = 8192;
  ShardMap map(4ull << 20, 4, align);
  ASSERT_EQ(map.shard_count(), 4u);
  uint64_t covered = 0;
  for (size_t s = 0; s < map.shard_count(); ++s) {
    EXPECT_EQ(map.ShardStart(s), covered);
    EXPECT_EQ(map.ShardStart(s) % align, 0u) << "shard " << s;
    EXPECT_EQ(map.ShardLen(s) % align, 0u) << "shard " << s;
    covered += map.ShardLen(s);
  }
  EXPECT_EQ(covered, map.arena_size());
}

TEST(ShardMap, ShardOfAgreesWithRanges) {
  ShardMap map(10 * 8192, 4, 8192);  // Uneven: spans round up, last absorbs.
  uint64_t covered = 0;
  for (size_t s = 0; s < map.shard_count(); ++s) {
    covered += map.ShardLen(s);
  }
  ASSERT_EQ(covered, map.arena_size());
  // Every offset maps to the shard whose [start, start+len) contains it.
  for (uint64_t off = 0; off < map.arena_size(); off += 4096) {
    size_t s = map.ShardOf(off);
    EXPECT_GE(off, map.ShardStart(s)) << "off " << off;
    EXPECT_LT(off, map.ShardStart(s) + map.ShardLen(s)) << "off " << off;
  }
  EXPECT_EQ(map.ShardOf(map.arena_size() - 1), map.shard_count() - 1);
}

TEST(ShardMap, ClampsShardCountToAlignedSpans) {
  // A 2-span arena cannot host 8 shards; the count clamps so every shard
  // owns at least one aligned span.
  ShardMap map(2 * 8192, 8, 8192);
  EXPECT_EQ(map.shard_count(), 2u);
  EXPECT_EQ(map.ShardLen(0), 8192u);
  EXPECT_EQ(map.ShardLen(1), 8192u);
}

TEST(ShardMap, ZeroShardsMeansOne) {
  ShardMap map(1 << 20, 0, 4096);
  EXPECT_EQ(map.shard_count(), 1u);
  EXPECT_EQ(map.ShardLen(0), 1u << 20);
}

// ---------------------------------------------------------------------------
// MPMC queue: every pushed value is popped exactly once, across produced
// racing producers and consumers, with the queue cycling through full and
// empty. Run under TSan this validates the seq handshake's acquire/release
// pairing.
// ---------------------------------------------------------------------------

TEST(MpmcQueue, ConcurrentProducersConsumersDeliverExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr uint64_t kPerProducer = 20000;
  MpmcQueue<uint64_t> q(256);  // Small: forces the full and empty paths.

  std::atomic<uint64_t> popped{0};
  std::vector<std::vector<uint64_t>> seen(kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t v = (static_cast<uint64_t>(p) << 32) | i;
        while (!q.TryPush(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&q, &popped, &seen, c] {
      uint64_t v;
      while (popped.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (q.TryPop(&v)) {
          seen[c].push_back(v);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Exactly-once: tally every value; each (producer, seq) appears once,
  // and within any single consumer a producer's values arrive in order
  // (producers claim strictly increasing cells).
  std::vector<std::vector<uint8_t>> hit(
      kProducers, std::vector<uint8_t>(kPerProducer, 0));
  for (int c = 0; c < kConsumers; ++c) {
    std::vector<uint64_t> last(kProducers, 0);
    std::vector<bool> any(kProducers, false);
    for (uint64_t v : seen[c]) {
      uint64_t p = v >> 32, i = v & 0xffffffffu;
      ASSERT_LT(p, static_cast<uint64_t>(kProducers));
      ASSERT_LT(i, kPerProducer);
      EXPECT_EQ(hit[p][i], 0) << "duplicate delivery of " << p << ":" << i;
      hit[p][i] = 1;
      if (any[p]) {
        EXPECT_GT(i, last[p]) << "per-producer order broken";
      }
      any[p] = true;
      last[p] = i;
    }
  }
  for (int p = 0; p < kProducers; ++p) {
    for (uint64_t i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(hit[p][i], 1) << "lost value " << p << ":" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Segmented lock manager.
// ---------------------------------------------------------------------------

TEST(ShardedLockManager, DisjointKeysAcrossSegmentsDoNotInterfere) {
  LockManager lm(8);
  EXPECT_EQ(lm.shard_count(), 8u);
  // Many transactions, each locking its own key: all grants immediate,
  // ReleaseAll finds exactly its own locks.
  for (TxnId t = 1; t <= 64; ++t) {
    ASSERT_OK(lm.Acquire(t, LockId::Record(1, static_cast<uint32_t>(t)),
                         LockMode::kExclusive));
  }
  EXPECT_EQ(lm.LockedCount(), 64u);
  for (TxnId t = 1; t <= 64; ++t) {
    EXPECT_TRUE(
        lm.Holds(t, LockId::Record(1, static_cast<uint32_t>(t)),
                 LockMode::kExclusive));
    lm.ReleaseAll(t);
  }
  EXPECT_EQ(lm.LockedCount(), 0u);
}

TEST(ShardedLockManager, UpgradeSharedToExclusive) {
  LockManager lm(4);
  ASSERT_OK(lm.Acquire(1, LockId::Record(1, 7), LockMode::kShared));
  ASSERT_OK(lm.Acquire(2, LockId::Record(1, 7), LockMode::kShared));
  // Txn 2 releases; txn 1 upgrades and then blocks out a new reader.
  lm.ReleaseAll(2);
  ASSERT_OK(lm.Acquire(1, LockId::Record(1, 7), LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(1, LockId::Record(1, 7), LockMode::kExclusive));
}

TEST(ShardedLockManager, CrossSegmentDeadlockIsDetected) {
  // Two locks that (very likely) live in different segments; a classic
  // ABBA deadlock must be caught by the global waits-for graph even
  // though each blocking edge forms under a different segment mutex.
  LockManager lm(8);
  LockId a = LockId::Record(1, 1);
  LockId b = LockId::Record(2, 100);
  ASSERT_OK(lm.Acquire(1, a, LockMode::kExclusive));
  ASSERT_OK(lm.Acquire(2, b, LockMode::kExclusive));

  // The victim is whichever acquire closes the cycle: usually txn 1 below,
  // but if this thread parks on b before t2 probes a, the detector kills
  // txn 2 instead. Either way exactly one side must see kDeadlock and the
  // other must be granted — asserting a specific victim would race.
  Status second;
  std::atomic<bool> t2_done{false};
  std::thread t2([&] {
    second = lm.Acquire(2, a, LockMode::kExclusive);
    lm.ReleaseAll(2);
    t2_done.store(true, std::memory_order_release);
  });
  Status first;
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    first = lm.Acquire(1, b, LockMode::kExclusive);
    if (!first.ok()) break;  // Txn 1 chosen as victim.
    lm.Release(1, b);
    // Granted can also mean txn 2 was killed and released b; once t2 has
    // finished no further cycle can form, so stop retrying.
    if (t2_done.load(std::memory_order_acquire)) break;
  }
  lm.ReleaseAll(1);  // If txn 1 was the victim, this unblocks t2.
  t2.join();
  EXPECT_NE(first.ok(), second.ok());
  if (!first.ok()) {
    EXPECT_TRUE(first.IsDeadlock()) << first.ToString();
  }
  if (!second.ok()) {
    EXPECT_TRUE(second.IsDeadlock()) << second.ToString();
  }
  EXPECT_EQ(lm.LockedCount(), 0u);
}

// Eight threads hammering one exclusive lock: no deadlock is possible on a
// single resource, so every acquire must eventually be granted — a convoy,
// not a cycle. Catches lost-wakeup and livelock bugs in the segment's
// wait/notify protocol.
TEST(ShardedLockManager, HotKeyConvoyMakesProgress) {
  LockManager lm(4);
  constexpr int kThreads = 8;
  constexpr int kRounds = 500;
  LockId hot = LockId::Record(3, 42);
  std::atomic<uint64_t> counter{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        TxnId txn = static_cast<TxnId>(1 + i + r * kThreads);
        Status s = lm.Acquire(txn, hot, LockMode::kExclusive);
        ASSERT_TRUE(s.ok()) << s.ToString();
        counter.fetch_add(1, std::memory_order_relaxed);
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), static_cast<uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(lm.LockedCount(), 0u);
}

// Seeded mixed-order workload over a small hot set: threads lock two keys
// in random order, so deadlocks do happen — each must resolve as a clean
// kDeadlock for the victim while every other participant makes progress.
TEST(ShardedLockManager, RandomHotSetDeadlocksResolve) {
  LockManager lm(8);
  constexpr int kThreads = 8;
  constexpr int kRounds = 300;
  std::atomic<uint64_t> commits{0}, victims{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Random rng(0xD15C0 + i);  // Seeded: reruns are reproducible.
      for (int r = 0; r < kRounds; ++r) {
        TxnId txn = static_cast<TxnId>(1 + i + r * kThreads);
        uint32_t k1 = rng.Uniform(4);
        uint32_t k2 = rng.Uniform(4);
        Status s = lm.Acquire(txn, LockId::Record(1, k1),
                              LockMode::kExclusive);
        if (s.ok() && k2 != k1) {
          s = lm.Acquire(txn, LockId::Record(1, k2), LockMode::kExclusive);
        }
        if (s.ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_TRUE(s.IsDeadlock()) << s.ToString();
          victims.fetch_add(1, std::memory_order_relaxed);
        }
        lm.ReleaseAll(txn);  // Commit and abort both end in ReleaseAll.
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(commits.load() + victims.load(),
            static_cast<uint64_t>(kThreads) * kRounds);
  EXPECT_GT(commits.load(), 0u);
  EXPECT_EQ(lm.LockedCount(), 0u);
}

// ---------------------------------------------------------------------------
// Sharded WAL: concurrent appenders and flushers; every record readable
// exactly once afterwards, in LSN order, through the preallocated tail.
// ---------------------------------------------------------------------------

TEST(ShardedWal, ConcurrentAppendFlushLosesNothing) {
  TempDir dir;
  const std::string path = dir.path() + "/log";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  {
    auto log = SystemLog::Open(path, nullptr, 4);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&log, i] {
        for (int r = 0; r < kPerThread; ++r) {
          // (txn, off) = (thread, seq): identifies the record on replay.
          std::string payload;
          EncodePhysRedo(&payload, static_cast<TxnId>(i + 1),
                         static_cast<DbPtr>(r) * 8, Slice("12345678", 8),
                         nullptr);
          (*log)->Append(payload);
          if (r % 10 == 9) ASSERT_OK((*log)->Flush());
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_OK((*log)->Flush());
    EXPECT_EQ((*log)->CurrentLsn(), (*log)->end_of_stable_log());
  }
  // Reopen: the scan must not classify the preallocated zero tail as
  // damage, and the reader must deliver all records exactly once.
  auto reopened = SystemLog::Open(path, nullptr, 4);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE((*reopened)->tail_scan().damaged);
  auto reader = LogReader::Open(path, 0, kInvalidLsn);
  ASSERT_TRUE(reader.ok());
  std::vector<std::vector<uint8_t>> hit(
      kThreads, std::vector<uint8_t>(kPerThread, 0));
  LogRecord rec;
  Lsn lsn;
  Lsn last = 0;
  uint64_t n = 0;
  while ((*reader)->Next(&rec, &lsn)) {
    EXPECT_GE(lsn, last);
    last = lsn;
    ASSERT_EQ(rec.type, LogRecordType::kPhysRedo);
    int t = static_cast<int>(rec.txn) - 1;
    int r = static_cast<int>(rec.off / 8);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_LT(r, kPerThread);
    EXPECT_EQ(hit[t][r], 0) << "duplicate record t" << t << "r" << r;
    hit[t][r] = 1;
    ++n;
  }
  EXPECT_EQ(n, static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Cross-shard transactions: a transaction whose writes span shard
// boundaries is atomic through crash recovery and through an injected
// commit-time I/O failure.
// ---------------------------------------------------------------------------

class CrossShardTest : public ::testing::Test {
 protected:
  void Open(size_t shards) {
    DatabaseOptions opts =
        SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword);
    opts.shards = shards;
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  /// Creates a table whose slots provably span at least `want` shards and
  /// fills it; returns the table id.
  TableId SpanningTable(uint32_t* slots_out) {
    constexpr uint32_t kRecordSize = 512;
    const uint32_t slots = static_cast<uint32_t>(
        db_->arena_size() / kRecordSize / 2);
    auto txn = db_->Begin();
    EXPECT_TRUE(txn.ok());
    auto t = db_->CreateTable(*txn, "span", kRecordSize, slots);
    EXPECT_TRUE(t.ok());
    for (uint32_t i = 0; i < slots; ++i) {
      EXPECT_TRUE(db_->Insert(*txn, *t, std::string(kRecordSize, 'a')).ok());
    }
    EXPECT_OK(db_->Commit(*txn));
    // The table's backing pages now cover a span larger than one shard:
    // the per-shard protection update counters prove writes landed on
    // more than one shard.
    size_t touched = 0;
    for (size_t s = 0; s < db_->shard_map().shard_count(); ++s) {
      char name[64];
      std::snprintf(name, sizeof(name), "protect.shard%zu.updates", s);
      if (db_->metrics()->counter(name)->Value() > 0) ++touched;
    }
    EXPECT_GE(touched, 2u) << "table does not span shards; grow it";
    *slots_out = slots;
    return *t;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(CrossShardTest, TxnSpanningShardsIsAtomicAcrossCrash) {
  Open(4);
  uint32_t slots = 0;
  TableId table = SpanningTable(&slots);

  // Committed cross-shard transaction: first and last slot (the table
  // spans >= 2 shards, so these are in different shards).
  auto c = db_->Begin();
  ASSERT_TRUE(c.ok());
  ASSERT_OK(db_->Update(*c, table, 0, 0, Slice("C", 1)));
  ASSERT_OK(db_->Update(*c, table, slots - 1, 0, Slice("C", 1)));
  ASSERT_OK(db_->Commit(*c));

  // Uncommitted cross-shard transaction: must vanish wholesale.
  auto u = db_->Begin();
  ASSERT_TRUE(u.ok());
  ASSERT_OK(db_->Update(*u, table, 1, 0, Slice("U", 1)));
  ASSERT_OK(db_->Update(*u, table, slots - 2, 0, Slice("U", 1)));

  ASSERT_OK(db_->CrashAndRecover());

  auto rd = db_->Begin();
  ASSERT_TRUE(rd.ok());
  std::string rec;
  ASSERT_OK(db_->Read(*rd, table, 0, &rec));
  EXPECT_EQ(rec[0], 'C');
  ASSERT_OK(db_->Read(*rd, table, slots - 1, &rec));
  EXPECT_EQ(rec[0], 'C');
  ASSERT_OK(db_->Read(*rd, table, 1, &rec));
  EXPECT_EQ(rec[0], 'a') << "uncommitted write survived on shard 0";
  ASSERT_OK(db_->Read(*rd, table, slots - 2, &rec));
  EXPECT_EQ(rec[0], 'a') << "uncommitted write survived on the last shard";
  ASSERT_OK(db_->Abort(*rd));
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST_F(CrossShardTest, InjectedCommitIoFailureKeepsCrossShardAtomicity) {
  Open(4);
  uint32_t slots = 0;
  TableId table = SpanningTable(&slots);

  // Fail the WAL write under this commit: Commit must report the error,
  // and after a crash neither shard's update may survive.
  crashpoint::Arm("wal.flush.pwrite", {crashpoint::Mode::kEio, 1, 0});
  auto t = db_->Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_OK(db_->Update(*t, table, 0, 0, Slice("X", 1)));
  ASSERT_OK(db_->Update(*t, table, slots - 1, 0, Slice("X", 1)));
  Status commit = db_->Commit(*t);
  crashpoint::DisarmAll();
  ASSERT_FALSE(commit.ok()) << "commit acked despite failed log write";

  ASSERT_OK(db_->CrashAndRecover());
  auto rd = db_->Begin();
  ASSERT_TRUE(rd.ok());
  std::string rec;
  ASSERT_OK(db_->Read(*rd, table, 0, &rec));
  EXPECT_EQ(rec[0], 'a');
  ASSERT_OK(db_->Read(*rd, table, slots - 1, &rec));
  EXPECT_EQ(rec[0], 'a');
  ASSERT_OK(db_->Abort(*rd));
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

// ---------------------------------------------------------------------------
// Whole-database concurrency: TPC-B-shaped invariant under 8 threads on a
// sharded engine. Transfers preserve the total; the validated (seqlock)
// read path runs concurrently with updates and must never observe a torn
// region.
// ---------------------------------------------------------------------------

TEST(ShardedDatabase, ConcurrentTransfersPreserveTotal) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  opts.shards = 4;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  constexpr uint32_t kAccounts = 64;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 150;
  auto setup = (*db)->Begin();
  ASSERT_TRUE(setup.ok());
  auto table = (*db)->CreateTable(*setup, "acct", 8, kAccounts);
  ASSERT_TRUE(table.ok());
  for (uint32_t i = 0; i < kAccounts; ++i) {
    int64_t v = 1000;
    ASSERT_TRUE(
        (*db)->Insert(*setup, *table, Slice(reinterpret_cast<char*>(&v), 8))
            .ok());
  }
  ASSERT_OK((*db)->Commit(*setup));

  std::atomic<uint64_t> committed{0}, deadlocks{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Random rng(0xACC7 + i);
      for (int r = 0; r < kPerThread; ++r) {
        uint32_t from = rng.Uniform(kAccounts);
        uint32_t to = rng.Uniform(kAccounts);
        if (from == to) to = (to + 1) % kAccounts;
        auto txn = (*db)->Begin();
        ASSERT_TRUE(txn.ok());
        int64_t a = 0, b = 0;
        Status s = (*db)->ReadField(*txn, *table, from, 0, 8, &a);
        if (s.ok()) s = (*db)->ReadField(*txn, *table, to, 0, 8, &b);
        if (s.ok()) {
          a -= 7;
          b += 7;
          s = (*db)->Update(*txn, *table, from, 0,
                            Slice(reinterpret_cast<char*>(&a), 8));
        }
        if (s.ok()) {
          s = (*db)->Update(*txn, *table, to, 0,
                            Slice(reinterpret_cast<char*>(&b), 8));
        }
        if (s.ok()) s = (*db)->Commit(*txn);
        if (s.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Deadlock is the only legitimate failure; anything else is a
          // bug. The txn may already be invalidated by Commit's abort.
          EXPECT_TRUE(s.IsDeadlock()) << s.ToString();
          deadlocks.fetch_add(1, std::memory_order_relaxed);
          (void)(*db)->Abort(*txn);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(committed.load(), 0u);

  // Total is preserved no matter how many transfers committed.
  auto rd = (*db)->Begin();
  ASSERT_TRUE(rd.ok());
  int64_t total = 0;
  for (uint32_t i = 0; i < kAccounts; ++i) {
    int64_t v = 0;
    ASSERT_OK((*db)->ReadField(*rd, *table, i, 0, 8, &v));
    total += v;
  }
  ASSERT_OK((*db)->Abort(*rd));
  EXPECT_EQ(total, int64_t{1000} * kAccounts);

  // And the image is clean: no torn codeword from the concurrent run.
  auto audit = (*db)->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);

  // Survives a crash too: the sharded WAL rebuilt the same state.
  ASSERT_OK((*db)->CrashAndRecover());
  auto rd2 = (*db)->Begin();
  ASSERT_TRUE(rd2.ok());
  total = 0;
  for (uint32_t i = 0; i < kAccounts; ++i) {
    int64_t v = 0;
    ASSERT_OK((*db)->ReadField(*rd2, *table, i, 0, 8, &v));
    total += v;
  }
  ASSERT_OK((*db)->Abort(*rd2));
  EXPECT_EQ(total, int64_t{1000} * kAccounts);
}

}  // namespace
}  // namespace cwdb
