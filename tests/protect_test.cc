// Tests of the protection schemes themselves (paper §3): codeword
// maintenance invariants under the prescribed interface, detection of
// injected direct physical corruption by audits, prevention of reads of
// corrupt data by Read Prechecking, prevention of wild writes by Hardware
// Protection, and the documented probabilistic limits of XOR codewords.

#include <gtest/gtest.h>

#include <cstring>

#include "common/parallel.h"
#include "common/random.h"
#include "core/database.h"
#include "faultinject/fault_injector.h"
#include "protect/codeword_protection.h"
#include "protect/codeword_table.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

// ---------- CodewordTable unit tests ----------

TEST(CodewordTable, RegionMath) {
  CodewordTable t(4096, 64);
  EXPECT_EQ(t.region_count(), 64u);
  EXPECT_EQ(t.RegionOf(0), 0u);
  EXPECT_EQ(t.RegionOf(63), 0u);
  EXPECT_EQ(t.RegionOf(64), 1u);
  EXPECT_EQ(t.RegionStart(3), 192u);
  EXPECT_EQ(t.space_overhead_bytes(), 64u * sizeof(codeword_t));
}

TEST(CodewordTable, ApplyDeltaSpanningRegions) {
  std::vector<uint8_t> arena(1024, 0);
  CodewordTable t(1024, 64);
  t.RebuildAll(arena.data());

  // An update spanning the region-0/region-1 boundary.
  std::vector<uint8_t> before(arena.begin() + 48, arena.begin() + 48 + 32);
  std::vector<uint8_t> after(32, 0x5A);
  std::memcpy(arena.data() + 48, after.data(), 32);
  t.ApplyDelta(48, before.data(), after.data(), 32);

  EXPECT_TRUE(t.Verify(arena.data(), 0));
  EXPECT_TRUE(t.Verify(arena.data(), 1));
  for (uint64_t r = 2; r < t.region_count(); ++r) {
    EXPECT_TRUE(t.Verify(arena.data(), r));
  }
}

TEST(CodewordTable, VerifyFailsAfterOutOfBandWrite) {
  std::vector<uint8_t> arena(1024, 0);
  CodewordTable t(1024, 64);
  t.RebuildAll(arena.data());
  arena[100] = 0xFF;  // Wild write, no ApplyDelta.
  EXPECT_FALSE(t.Verify(arena.data(), t.RegionOf(100)));
  EXPECT_TRUE(t.Verify(arena.data(), 0));
}

// ---------- Scheme behaviour over a real database ----------

struct SchemeCase {
  ProtectionScheme scheme;
  uint32_t region_size;
};

class CodewordSchemeTest : public ::testing::TestWithParam<SchemeCase> {
 protected:
  void Open() {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), GetParam().scheme, GetParam().region_size));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  // Creates a table with one committed record and returns its image offset.
  DbPtr SetupOneRecord(TableId* table, uint32_t* slot) {
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 128, 64);
    EXPECT_TRUE(t.ok());
    auto rid = db_->Insert(*txn, *t, std::string(128, 'v'));
    EXPECT_TRUE(rid.ok());
    EXPECT_TRUE(db_->Commit(*txn).ok());
    *table = *t;
    *slot = rid->slot;
    return db_->image()->RecordOff(*t, rid->slot);
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_P(CodewordSchemeTest, CleanDatabasePassesAudit) {
  Open();
  TableId table;
  uint32_t slot;
  SetupOneRecord(&table, &slot);
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean);
  EXPECT_EQ(report->ranges.size(), 0u);
}

TEST_P(CodewordSchemeTest, AuditStaysCleanUnderChurn) {
  Open();
  auto txn = db_->Begin();
  auto t = db_->CreateTable(*txn, "churn", 64, 256);
  ASSERT_TRUE(t.ok());
  Random rng(5);
  std::vector<uint32_t> live;
  for (int i = 0; i < 400; ++i) {
    if (live.empty() || rng.OneIn(3)) {
      auto rid = db_->Insert(*txn, *t, std::string(64, 'a' + i % 26));
      if (rid.ok()) live.push_back(rid->slot);
    } else if (rng.OneIn(2)) {
      uint32_t s = live[rng.Uniform(live.size())];
      ASSERT_OK(db_->Update(*txn, *t, s, rng.Uniform(56), "1234"));
    } else {
      size_t idx = rng.Uniform(live.size());
      ASSERT_OK(db_->Delete(*txn, *t, live[idx]));
      live.erase(live.begin() + idx);
    }
    if (i % 100 == 99) {
      ASSERT_OK(db_->Commit(*txn));
      txn = db_->Begin();
    }
  }
  ASSERT_OK(db_->Commit(*txn));
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean);
}

TEST_P(CodewordSchemeTest, AuditStaysCleanAfterAborts) {
  Open();
  TableId table;
  uint32_t slot;
  SetupOneRecord(&table, &slot);
  auto txn = db_->Begin();
  ASSERT_OK(db_->Update(*txn, table, slot, 0, "garbage!"));
  ASSERT_TRUE(db_->Insert(*txn, table, std::string(128, 'x')).ok());
  ASSERT_OK(db_->Abort(*txn));
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean);
}

TEST_P(CodewordSchemeTest, WildWriteDetectedByAudit) {
  Open();
  TableId table;
  uint32_t slot;
  DbPtr off = SetupOneRecord(&table, &slot);

  FaultInjector inject(db_.get(), 99);
  auto outcome = inject.WildWriteAt(off + 10, "CORRUPTED");
  ASSERT_FALSE(outcome.prevented);
  ASSERT_TRUE(outcome.changed_bits);

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean);
  ASSERT_GE(report->ranges.size(), 1u);
  // The failing region covers the corrupted bytes.
  bool covered = false;
  for (const auto& r : report->ranges) {
    if (r.off <= off + 10 && off + 10 < r.off + r.len) covered = true;
  }
  EXPECT_TRUE(covered);
}

TEST_P(CodewordSchemeTest, SingleBitFlipDetected) {
  Open();
  TableId table;
  uint32_t slot;
  DbPtr off = SetupOneRecord(&table, &slot);
  uint8_t byte = db_->UnsafeRawBase()[off];
  byte ^= 0x40;
  FaultInjector inject(db_.get(), 1);
  inject.WildWriteAt(off, Slice(reinterpret_cast<const char*>(&byte), 1));
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean);
}

TEST_P(CodewordSchemeTest, CheckpointCertificationCatchesCorruption) {
  Open();
  TableId table;
  uint32_t slot;
  DbPtr off = SetupOneRecord(&table, &slot);
  FaultInjector inject(db_.get(), 7);
  inject.WildWriteAt(off, "BAD");
  Status s = db_->Checkpoint();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Regions, CodewordSchemeTest,
    ::testing::Values(SchemeCase{ProtectionScheme::kDataCodeword, 64},
                      SchemeCase{ProtectionScheme::kDataCodeword, 512},
                      SchemeCase{ProtectionScheme::kDataCodeword, 8192},
                      SchemeCase{ProtectionScheme::kReadPrecheck, 64},
                      SchemeCase{ProtectionScheme::kReadPrecheck, 512},
                      SchemeCase{ProtectionScheme::kReadLog, 512},
                      SchemeCase{ProtectionScheme::kCodewordReadLog, 512}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      return std::string(info.param.scheme == ProtectionScheme::kDataCodeword
                             ? "DataCW"
                         : info.param.scheme == ProtectionScheme::kReadPrecheck
                             ? "Precheck"
                         : info.param.scheme == ProtectionScheme::kReadLog
                             ? "ReadLog"
                             : "CWReadLog") +
             "_" + std::to_string(info.param.region_size);
    });

// ---------- Read Prechecking specifics ----------

TEST(ReadPrecheck, CorruptReadIsRefused) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kReadPrecheck, 128);
  // 32, not the default 64: the repair attempt this test provokes holds
  // every member region's protection latch at once, and TSan's deadlock
  // detector aborts the process past 64 simultaneously held locks.
  opts.protection.parity_group_regions = 32;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 128, 16);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(128, 'g'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));

  // A lone corrupt region would be repaired in place by the parity tier
  // and the read would succeed; corrupt a *second* region in the same
  // parity group so the damage exceeds the correction budget and the
  // precheck must refuse the read. The sibling is picked two regions away
  // so the fresh insert below (slot 1, one region over at this 128-byte
  // record size) stays clean.
  DbPtr off = (*db)->image()->RecordOff(*t, rid->slot);
  uint64_t r = off / 128;
  uint64_t sib = (r % 32 <= 29) ? r + 2 : r - 2;
  FaultInjector inject(db->get(), 3);
  inject.WildWriteAt(off + 4, "XX");
  ASSERT_TRUE(inject.WildWriteAt(sib * 128 + 4, "XX").changed_bits);

  txn = (*db)->Begin();
  std::string got;
  Status s = (*db)->Read(*txn, *t, rid->slot, &got);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  ASSERT_OK((*db)->Abort(*txn));

  // Reads of *other* records (different regions) still succeed.
  txn = (*db)->Begin();
  auto rid2 = (*db)->Insert(*txn, *t, std::string(128, 'h'));
  ASSERT_TRUE(rid2.ok());
  ASSERT_OK((*db)->Read(*txn, *t, rid2->slot, &got));
  ASSERT_OK((*db)->Commit(*txn));
}

TEST(ReadPrecheck, CacheRecoveryRepairsRegionInPlace) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kReadPrecheck, 128);
  // 32-region groups for the same TSan held-locks reason as above.
  opts.protection.parity_group_regions = 32;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 128, 16);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(128, 'o'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));
  ASSERT_OK((*db)->Checkpoint());

  // Post-checkpoint committed update, then corruption.
  txn = (*db)->Begin();
  ASSERT_OK((*db)->Update(*txn, *t, rid->slot, 0, "NEWVAL"));
  ASSERT_OK((*db)->Commit(*txn));

  // Two corrupt regions in one parity group: past the in-place repair
  // budget, so the read is refused and the cache-recovery path below is
  // what heals the image.
  DbPtr off = (*db)->image()->RecordOff(*t, rid->slot);
  uint64_t r = off / 128;
  uint64_t sib = (r % 32 <= 29) ? r + 2 : r - 2;
  FaultInjector inject(db->get(), 4);
  inject.WildWriteAt(off + 2, "??");
  ASSERT_TRUE(inject.WildWriteAt(sib * 128 + 2, "??").changed_bits);

  txn = (*db)->Begin();
  std::string got;
  Status s = (*db)->Read(*txn, *t, rid->slot, &got);
  ASSERT_TRUE(s.IsCorruption());
  ASSERT_OK((*db)->Abort(*txn));

  // Repair the region from checkpoint + redo log (cache-recovery model).
  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  ASSERT_OK((*db)->CacheRecover(report->ranges));

  // The read now succeeds and sees the *post-checkpoint committed* value.
  txn = (*db)->Begin();
  ASSERT_OK((*db)->Read(*txn, *t, rid->slot, &got));
  EXPECT_EQ(got.substr(0, 6), "NEWVAL");
  ASSERT_OK((*db)->Commit(*txn));
  auto report2 = (*db)->Audit();
  ASSERT_TRUE(report2.ok());
  EXPECT_TRUE(report2->clean);
}

// ---------- Hardware Protection specifics ----------

TEST(HardwareProtection, WildWriteIsPrevented) {
  TempDir dir;
  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kHardware));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 64, 16);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(64, 'p'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));

  DbPtr off = (*db)->image()->RecordOff(*t, rid->slot);
  FaultInjector inject(db->get(), 5);
  auto outcome = inject.WildWriteAt(off, "EVIL");
  EXPECT_TRUE(outcome.prevented);
  EXPECT_FALSE(outcome.changed_bits);

  // Data unharmed.
  txn = (*db)->Begin();
  std::string got;
  ASSERT_OK((*db)->Read(*txn, *t, rid->slot, &got));
  EXPECT_EQ(got, std::string(64, 'p'));
  ASSERT_OK((*db)->Commit(*txn));
}

TEST(HardwareProtection, PrescribedUpdatesStillWork) {
  TempDir dir;
  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kHardware));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 64, 16);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(64, '1'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Update(*txn, *t, rid->slot, 0, "updated."));
  ASSERT_OK((*db)->Commit(*txn));
  EXPECT_GT((*db)->GetStats().protection.mprotect_calls, 0u);
}

TEST(HardwareProtection, ExposureWindowAllowsWildWrite) {
  // The known weakness of the expose-page model (§4, Ng & Chen): while a
  // page is exposed for a legitimate update, a wild write to the *same
  // page* is NOT prevented.
  TempDir dir;
  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kHardware));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 64, 16);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(64, 'w'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));

  DbPtr off = (*db)->image()->RecordOff(*t, rid->slot);
  txn = (*db)->Begin();
  // Open a raw update window on the record's page...
  ASSERT_OK((*db)->txns()->BeginOp(*txn, OpCode::kUpdate, kMaxTables,
                                   kInvalidSlot, std::nullopt, off, 8));
  auto ptr = (*txn)->BeginUpdate(off, 8);
  ASSERT_TRUE(ptr.ok());
  // ...and wild-write within the exposed page from "another component".
  FaultInjector inject(db->get(), 6);
  auto outcome = inject.WildWriteAt(off + 32, "OOPS");
  EXPECT_FALSE(outcome.prevented);
  EXPECT_TRUE(outcome.changed_bits);
  std::memcpy(*ptr, "LEGIT!!!", 8);
  ASSERT_OK((*txn)->EndUpdate());
  LogicalUndo undo;
  undo.code = UndoCode::kWriteRaw;
  undo.raw_off = off;
  undo.payload = std::string(8, 'w');
  ASSERT_OK((*db)->txns()->CommitOp(*txn, undo));
  ASSERT_OK((*db)->Commit(*txn));
}

// ---------- Documented limitation: XOR cancellation ----------

TEST(CodewordLimits, CancellingWildWritesEscapeDetection) {
  // Two wild writes that flip the same bits in two different words of the
  // same region cancel in the XOR parity — the paper's "with high
  // probability" caveat. This documents (and pins) the limitation.
  TempDir dir;
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword, 512));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 128, 8);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(128, 'c'));
  ASSERT_TRUE(rid.ok());
  ASSERT_OK((*db)->Commit(*txn));

  DbPtr off = (*db)->image()->RecordOff(*t, rid->slot);
  // Same 4-byte garbage XORed into two word-aligned spots of one region.
  FaultInjector inject(db->get(), 8);
  uint8_t a[4], b[4];
  std::memcpy(a, (*db)->UnsafeRawBase() + off, 4);
  std::memcpy(b, (*db)->UnsafeRawBase() + off + 8, 4);
  for (int i = 0; i < 4; ++i) {
    a[i] ^= 0x55;
    b[i] ^= 0x55;
  }
  inject.WildWriteAt(off, Slice(reinterpret_cast<const char*>(a), 4));
  inject.WildWriteAt(off + 8, Slice(reinterpret_cast<const char*>(b), 4));

  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean) << "XOR parity cancels identical paired flips";
}

// ---------- Stats and space overhead ----------

TEST(ProtectionStats, SpaceOverheadMatchesRegionSize) {
  TempDir dir;
  for (uint32_t region : {64u, 512u, 8192u}) {
    DatabaseOptions opts = SmallDbOptions(
        dir.path() + "/r" + std::to_string(region),
        ProtectionScheme::kDataCodeword, region);
    auto db = Database::Open(opts);
    ASSERT_TRUE(db.ok());
    // One codeword per region, plus one region-sized XOR parity column
    // per parity group (the error-correcting repair tier).
    uint64_t regions = (4ull << 20) / region;
    uint64_t group = opts.protection.parity_group_regions;
    uint64_t expected =
        regions * sizeof(codeword_t) + (regions + group - 1) / group * region;
    EXPECT_EQ((*db)->GetStats().protection_space_overhead_bytes, expected);
  }
}

TEST(ProtectionStats, PrecheckCountsReads) {
  TempDir dir;
  auto db = Database::Open(
      SmallDbOptions(dir.path(), ProtectionScheme::kReadPrecheck, 512));
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  auto t = (*db)->CreateTable(*txn, "t", 64, 16);
  ASSERT_TRUE(t.ok());
  auto rid = (*db)->Insert(*txn, *t, std::string(64, 's'));
  ASSERT_TRUE(rid.ok());
  uint64_t before = (*db)->GetStats().protection.prechecks;
  std::string got;
  ASSERT_OK((*db)->Read(*txn, *t, rid->slot, &got));
  EXPECT_GT((*db)->GetStats().protection.prechecks, before);
  ASSERT_OK((*db)->Commit(*txn));
}

// ---------- Parallel audit / rebuild sweeps ----------
// sweep_threads is pinned > 1 so the pool path runs even on a single-CPU
// host (where the hardware-concurrency default resolves to one lane).

TEST(ParallelSweep, RebuildAllMatchesSequential) {
  Random rng(11);
  std::vector<uint8_t> arena(64 * 1024);
  for (auto& b : arena) b = static_cast<uint8_t>(rng.Next32());

  CodewordTable sequential(arena.size(), 128);
  sequential.RebuildAll(arena.data());
  CodewordTable parallel(arena.size(), 128);
  ThreadPool pool(4);
  parallel.RebuildAll(arena.data(), &pool);

  for (uint64_t r = 0; r < sequential.region_count(); ++r) {
    ASSERT_EQ(parallel.Get(r), sequential.Get(r)) << "region " << r;
  }
}

TEST(ParallelSweep, AuditAllReportsCorruptRegionsInAscendingOrder) {
  auto image = DbImage::Create(1 << 20, 4096);
  ASSERT_TRUE(image.ok());
  Random rng(12);
  for (uint64_t i = 0; i < (*image)->size(); ++i) {
    *(*image)->At(i) = static_cast<uint8_t>(rng.Next32());
  }
  ProtectionOptions popts;
  popts.scheme = ProtectionScheme::kDataCodeword;
  popts.region_size = 512;
  popts.sweep_threads = 4;
  auto prot = CodewordProtection::Create(popts, image->get());
  ASSERT_TRUE(prot.ok());
  ASSERT_OK((*prot)->AuditAll(nullptr));

  // Corrupt scattered regions out-of-band, including both ends of the
  // image so every parallel lane's span holds at least one hit.
  const uint64_t kCorruptRegions[] = {0, 7, 511, 512, 1024, 2047};
  for (uint64_t r : kCorruptRegions) {
    *(*image)->At(r * 512 + 13) ^= 0x40;
  }
  std::vector<CorruptRange> corrupt;
  Status s = (*prot)->AuditAll(&corrupt);
  EXPECT_TRUE(s.IsCorruption());
  ASSERT_EQ(corrupt.size(), std::size(kCorruptRegions));
  for (size_t i = 0; i < corrupt.size(); ++i) {
    EXPECT_EQ(corrupt[i].off, kCorruptRegions[i] * 512);
    EXPECT_EQ(corrupt[i].len, 512u);
  }
  // Stats totals match the sequential contract: every region audited per
  // sweep, one failure per corrupt region.
  const ProtectionStats& stats = (*prot)->stats();
  EXPECT_EQ(stats.regions_audited, 2 * (1u << 20) / 512);
  EXPECT_EQ(stats.audit_failures, std::size(kCorruptRegions));
}

TEST(ParallelSweep, AuditRangeParallelMatchesSequentialAuditRange) {
  auto image = DbImage::Create(512 * 1024, 4096);
  ASSERT_TRUE(image.ok());
  Random rng(13);
  for (uint64_t i = 0; i < (*image)->size(); ++i) {
    *(*image)->At(i) = static_cast<uint8_t>(rng.Next32());
  }
  ProtectionOptions popts;
  popts.scheme = ProtectionScheme::kDataCodeword;
  popts.region_size = 256;
  popts.sweep_threads = 3;
  auto prot = CodewordProtection::Create(popts, image->get());
  ASSERT_TRUE(prot.ok());
  *(*image)->At(100 * 256 + 5) ^= 1;
  *(*image)->At(900 * 256 + 5) ^= 1;

  std::vector<CorruptRange> seq, par;
  Status s1 = (*prot)->AuditRange(0, (*image)->size(), &seq);
  Status s2 = (*prot)->AuditRangeParallel(0, (*image)->size(), 3, &par);
  EXPECT_EQ(s1.IsCorruption(), s2.IsCorruption());
  ASSERT_EQ(par.size(), seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(par[i].off, seq[i].off);
    EXPECT_EQ(par[i].len, seq[i].len);
  }
}

TEST(ParallelSweep, ResetFromImageRepairsUnderParallelSweep) {
  auto image = DbImage::Create(256 * 1024, 4096);
  ASSERT_TRUE(image.ok());
  ProtectionOptions popts;
  popts.scheme = ProtectionScheme::kDataCodeword;
  popts.region_size = 128;
  popts.sweep_threads = 4;
  auto prot = CodewordProtection::Create(popts, image->get());
  ASSERT_TRUE(prot.ok());
  // Out-of-band writes everywhere, then a parallel rebuild: the table must
  // describe the new image exactly.
  Random rng(14);
  for (uint64_t i = 0; i < (*image)->size(); i += 37) {
    *(*image)->At(i) = static_cast<uint8_t>(rng.Next32());
  }
  ASSERT_OK((*prot)->ResetFromImage());
  EXPECT_OK((*prot)->AuditAll(nullptr));
}

}  // namespace
}  // namespace cwdb
