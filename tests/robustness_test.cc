// Robustness: decoders must never crash or over-read on malformed input
// (fuzz-style sweeps with deterministic seeds), file utilities behave, and
// the hardware scheme's page pin-counting stays correct under concurrent
// overlapping exposures.

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <mutex>
#include <set>
#include <thread>

#include "common/file_util.h"
#include "common/random.h"
#include "core/database.h"
#include "faultinject/fault_injector.h"
#include "recovery/corrupt_note.h"
#include "tests/test_util.h"
#include "wal/log_record.h"
#include "wal/system_log.h"

namespace cwdb {
namespace {

// ---------- Decoder fuzz ----------

TEST(DecoderFuzz, RandomBytesNeverCrashLogRecordDecode) {
  Random rng(2024);
  for (int iter = 0; iter < 5000; ++iter) {
    size_t len = rng.Uniform(200);
    std::string buf(len, '\0');
    for (auto& c : buf) c = static_cast<char>(rng.Next32());
    LogRecord rec;
    // Must return true or false; never crash, never read out of bounds
    // (ASAN-clean by construction of Decoder).
    (void)DecodeLogRecord(buf, &rec);
  }
}

TEST(DecoderFuzz, TruncationSweepOfValidRecords) {
  // Every strict prefix of a valid record must decode as failure, not as a
  // different valid record that silently drops data.
  std::string full;
  LogicalUndo undo;
  undo.code = UndoCode::kReinsertSlot;
  undo.table = 3;
  undo.slot = 17;
  undo.payload = std::string(40, 'p');
  EncodeCommitOp(&full, 9, 55, 1, undo);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    LogRecord rec;
    bool ok = DecodeLogRecord(Slice(full.data(), cut), &rec);
    EXPECT_FALSE(ok) << "prefix of length " << cut << " decoded";
  }
  LogRecord rec;
  EXPECT_TRUE(DecodeLogRecord(full, &rec));
}

TEST(DecoderFuzz, BitFlipSweepOfPhysRedo) {
  std::string full;
  EncodePhysRedo(&full, 7, 4096, Slice("0123456789abcdef"), nullptr);
  Random rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = full;
    mutated[rng.Uniform(mutated.size())] ^=
        static_cast<char>(1 << rng.Uniform(8));
    LogRecord rec;
    (void)DecodeLogRecord(mutated, &rec);  // Any outcome but a crash.
  }
}

TEST(DecoderFuzz, CorruptionNoteRoundTripAndGarbage) {
  TempDir dir;
  std::string path = dir.path() + "/note";
  CorruptionNote note;
  note.last_clean_audit_lsn = 777;
  note.ranges = {{100, 50}, {4096, 512}};
  ASSERT_OK(WriteCorruptionNote(path, note));
  auto read = ReadCorruptionNote(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->last_clean_audit_lsn, 777u);
  ASSERT_EQ(read->ranges.size(), 2u);
  EXPECT_EQ(read->ranges[1].off, 4096u);

  // Garbage file: rejected, not crashed.
  ASSERT_OK(WriteFileAtomic(path, "not a corruption note at all"));
  EXPECT_FALSE(ReadCorruptionNote(path).ok());
  // CRC catches single-byte tampering.
  ASSERT_OK(WriteCorruptionNote(path, note));
  std::string contents;
  ASSERT_OK(ReadFileToString(path, &contents));
  contents[8] ^= 0x01;
  ASSERT_OK(WriteFileAtomic(path, contents));
  EXPECT_FALSE(ReadCorruptionNote(path).ok());
}

TEST(DecoderFuzz, AuditMetaGarbage) {
  TempDir dir;
  std::string path = dir.path() + "/meta";
  ASSERT_OK(WriteAuditMeta(path, 12345));
  auto lsn = ReadAuditMeta(path);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 12345u);
  ASSERT_OK(WriteFileAtomic(path, "xx"));
  EXPECT_FALSE(ReadAuditMeta(path).ok());
}

// ---------- file_util ----------

TEST(FileUtil, AtomicWriteAndRead) {
  TempDir dir;
  std::string path = dir.path() + "/f";
  ASSERT_OK(WriteFileAtomic(path, "hello"));
  std::string got;
  ASSERT_OK(ReadFileToString(path, &got));
  EXPECT_EQ(got, "hello");
  ASSERT_OK(WriteFileAtomic(path, "replaced"));
  ASSERT_OK(ReadFileToString(path, &got));
  EXPECT_EQ(got, "replaced");
}

TEST(FileUtil, ReadMissingFileIsNotFound) {
  std::string got;
  EXPECT_TRUE(ReadFileToString("/nonexistent/cwdb", &got).IsNotFound());
}

TEST(FileUtil, EnsureFileSizeCreatesAndResizes) {
  TempDir dir;
  std::string path = dir.path() + "/sized";
  ASSERT_OK(EnsureFileSize(path, 8192));
  std::string got;
  ASSERT_OK(ReadFileToString(path, &got));
  EXPECT_EQ(got.size(), 8192u);
  ASSERT_OK(EnsureFileSize(path, 100));
  ASSERT_OK(ReadFileToString(path, &got));
  EXPECT_EQ(got.size(), 100u);
}

TEST(FileUtil, MakeDirsNested) {
  TempDir dir;
  std::string deep = dir.path() + "/a/b/c";
  ASSERT_OK(MakeDirs(deep));
  EXPECT_TRUE(FileExists(deep));
  ASSERT_OK(MakeDirs(deep));  // Idempotent.
}

TEST(FileUtil, RemoveFileIfExistsIdempotent) {
  TempDir dir;
  std::string path = dir.path() + "/gone";
  ASSERT_OK(WriteFileAtomic(path, "x"));
  ASSERT_OK(RemoveFileIfExists(path));
  EXPECT_FALSE(FileExists(path));
  ASSERT_OK(RemoveFileIfExists(path));  // Already gone: still OK.
}

// ---------- Hardware pin counting under concurrency ----------

TEST(HardwarePinning, OverlappingExposuresReprotectOnlyWhenLastEnds) {
  TempDir dir;
  auto db =
      Database::Open(SmallDbOptions(dir.path(), ProtectionScheme::kHardware));
  ASSERT_TRUE(db.ok());
  auto setup = (*db)->Begin();
  auto t = (*db)->CreateTable(*setup, "t", 64, 128);
  ASSERT_TRUE(t.ok());
  // Two records on the same OS page.
  auto r1 = (*db)->Insert(*setup, *t, std::string(64, '1'));
  auto r2 = (*db)->Insert(*setup, *t, std::string(64, '2'));
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_OK((*db)->Commit(*setup));
  DbPtr off1 = (*db)->image()->RecordOff(*t, r1->slot);
  DbPtr off2 = (*db)->image()->RecordOff(*t, r2->slot);
  ASSERT_EQ(off1 / Arena::OsPageSize(), off2 / Arena::OsPageSize());

  // Thread A holds an exposure open on the page while thread B performs a
  // complete update on the same page. B's EndUpdate must NOT re-protect
  // the page out from under A.
  auto ta = (*db)->Begin();
  ASSERT_OK((*db)->txns()->BeginOp(*ta, OpCode::kUpdate, kMaxTables,
                                   kInvalidSlot, std::nullopt, off1, 8));
  auto pa = (*ta)->BeginUpdate(off1, 8);
  ASSERT_TRUE(pa.ok());

  std::atomic<bool> b_done{false};
  std::thread tb_thread([&] {
    auto tb = (*db)->Begin();
    EXPECT_OK((*db)->Update(*tb, *t, r2->slot, 0, "BBBB"));
    EXPECT_OK((*db)->Commit(*tb));
    b_done = true;
  });
  tb_thread.join();
  ASSERT_TRUE(b_done.load());

  // A's exposure must still be writable.
  std::memcpy(*pa, "AAAAAAAA", 8);
  ASSERT_OK((*ta)->EndUpdate());
  LogicalUndo undo;
  undo.code = UndoCode::kWriteRaw;
  undo.raw_off = off1;
  undo.payload = std::string(8, '1');
  ASSERT_OK((*db)->txns()->CommitOp(*ta, undo));
  ASSERT_OK((*db)->Commit(*ta));

  // Now that every exposure ended, the page is protected again.
  FaultInjector inject(db->get(), 5);
  auto outcome = inject.WildWriteAt(off1, "EVIL");
  EXPECT_TRUE(outcome.prevented);
}

// ---------- SystemLog concurrency ----------

TEST(SystemLogConcurrency, GroupCommitBatchesConcurrentFlushers) {
  // Group commit only saves fsyncs when flush requests overlap in time: a
  // leader's in-flight batch absorbs the appends of the threads queued
  // behind it. The seed ran this on tmpfs (TempDir lives in /dev/shm),
  // where fdatasync never blocks — on a small host a flushing thread then
  // never yields the CPU mid-flush, no two flushes ever overlap, and the
  // count comes out at exactly one fsync per flush. Group commit exists to
  // amortize *blocking* fsyncs, so run this test on a disk-backed
  // filesystem: while the leader sleeps in fdatasync the other threads
  // queue behind it and the next leader flushes their records as one
  // batch. A start barrier forces initial overlap; a bounded retry absorbs
  // residual scheduling noise.
  constexpr int kThreads = 8;
  constexpr int kCommitsEach = 40;
  constexpr uint64_t kTotalFlushes =
      static_cast<uint64_t>(kThreads) * kCommitsEach;
  constexpr int kAttempts = 5;
  uint64_t flushes = kTotalFlushes;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    char tmpl[] = "/tmp/cwdb_group_commit_XXXXXX";  // Disk-backed, not shm.
    char* disk_dir = ::mkdtemp(tmpl);
    ASSERT_NE(disk_dir, nullptr);
    auto log = SystemLog::Open(std::string(disk_dir) + "/log");
    ASSERT_TRUE(log.ok());
    std::latch start(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        std::string payload;
        EncodeCommitTxn(&payload, static_cast<TxnId>(i));
        start.arrive_and_wait();
        for (int j = 0; j < kCommitsEach; ++j) {
          Lsn lsn = (*log)->Append(payload);
          EXPECT_OK((*log)->Flush());
          // Durability contract: our record is within the stable prefix.
          EXPECT_LT(lsn, (*log)->end_of_stable_log());
        }
      });
    }
    for (auto& th : threads) th.join();
    // Nothing lost or reordered beyond framing, on every attempt.
    auto reader = LogReader::Open(std::string(disk_dir) + "/log", 0,
                                  kInvalidLsn);
    ASSERT_TRUE(reader.ok());
    LogRecord rec;
    int n = 0;
    while ((*reader)->Next(&rec, nullptr)) ++n;
    flushes = (*log)->flush_count();
    std::string cleanup = std::string("rm -rf '") + disk_dir + "'";
    [[maybe_unused]] int rc = ::system(cleanup.c_str());
    ASSERT_EQ(n, kThreads * kCommitsEach);
    if (flushes < kTotalFlushes) break;
  }
  // Group commit: far fewer fsyncs than flush requests.
  EXPECT_LT(flushes, kTotalFlushes);
}

TEST(SystemLogConcurrency, AppendsDuringFlushKeepDenseLsns) {
  TempDir dir;
  auto log = SystemLog::Open(dir.path() + "/log");
  ASSERT_TRUE(log.ok());
  std::string payload;
  EncodeBeginTxn(&payload, 1);
  // Appender thread races a flusher thread; all LSNs must stay unique and
  // every record must survive.
  std::atomic<bool> stop{false};
  std::set<Lsn> lsns;
  std::mutex lsns_mu;
  std::thread appender([&] {
    while (!stop) {
      Lsn lsn = (*log)->Append(payload);
      std::lock_guard<std::mutex> g(lsns_mu);
      EXPECT_TRUE(lsns.insert(lsn).second) << "duplicate LSN " << lsn;
    }
  });
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK((*log)->Flush());
  }
  stop = true;
  appender.join();
  ASSERT_OK((*log)->Flush());

  auto reader = LogReader::Open(dir.path() + "/log", 0, kInvalidLsn);
  ASSERT_TRUE(reader.ok());
  LogRecord rec;
  size_t n = 0;
  while ((*reader)->Next(&rec, nullptr)) ++n;
  EXPECT_EQ(n, lsns.size());
}

TEST(SystemLogConcurrency, ParallelAppendersGetDistinctLsns) {
  TempDir dir;
  auto log = SystemLog::Open(dir.path() + "/log");
  ASSERT_TRUE(log.ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<Lsn>> lsns(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      std::string payload;
      EncodeBeginTxn(&payload, static_cast<TxnId>(i));
      for (int j = 0; j < kPerThread; ++j) {
        lsns[i].push_back((*log)->Append(payload));
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_OK((*log)->Flush());

  std::set<Lsn> all;
  for (const auto& v : lsns) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));

  // And the stable log contains exactly that many records.
  auto reader = LogReader::Open(dir.path() + "/log", 0, kInvalidLsn);
  ASSERT_TRUE(reader.ok());
  LogRecord rec;
  int n = 0;
  while ((*reader)->Next(&rec, nullptr)) ++n;
  EXPECT_EQ(n, kThreads * kPerThread);
}

}  // namespace
}  // namespace cwdb
