// Tests of the structural integrity checker (Küspert-style control-
// structure audit, §4 [10]) and its integration with explicit corruption
// recovery, plus a full-system stress test: concurrent workers,
// checkpoints and a background auditor all racing.

#include "storage/integrity.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "core/auditor.h"
#include "faultinject/fault_injector.h"
#include "tests/test_util.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

class IntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), ProtectionScheme::kReadLog));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 100, 200);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_->Insert(*txn, table_, std::string(100, 'i')).ok());
    }
    ASSERT_OK(db_->Commit(*txn));
  }

  TableMetaRaw* MutableMeta() {
    return reinterpret_cast<TableMetaRaw*>(db_->UnsafeRawBase() +
                                           TableMetaOff(table_));
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

TEST_F(IntegrityTest, CleanImagePasses) {
  EXPECT_TRUE(db_->VerifyIntegrity().empty());
}

TEST_F(IntegrityTest, DetectsHeaderDamage) {
  uint64_t bad_cursor = 12345;  // Unaligned.
  std::memcpy(db_->UnsafeRawBase() + offsetof(DbHeaderRaw, alloc_cursor),
              &bad_cursor, 8);
  auto violations = db_->VerifyIntegrity();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].message.find("cursor"), std::string::npos);
}

TEST_F(IntegrityTest, DetectsZeroRecordSize) {
  MutableMeta()->record_size = 0;
  auto violations = db_->VerifyIntegrity();
  ASSERT_FALSE(violations.empty());
}

TEST_F(IntegrityTest, DetectsUnalignedExtent) {
  MutableMeta()->data_off += 7;
  EXPECT_FALSE(db_->VerifyIntegrity().empty());
}

TEST_F(IntegrityTest, DetectsOutOfBoundsExtent) {
  MutableMeta()->data_off = db_->arena_size() - 16;
  EXPECT_FALSE(db_->VerifyIntegrity().empty());
}

TEST_F(IntegrityTest, DetectsOverlappingExtents) {
  // Second table whose data extent collides with the first table's.
  auto txn = db_->Begin();
  auto t2 = db_->CreateTable(*txn, "t2", 100, 50);
  ASSERT_TRUE(t2.ok());
  ASSERT_OK(db_->Commit(*txn));
  auto* m2 = reinterpret_cast<TableMetaRaw*>(db_->UnsafeRawBase() +
                                             TableMetaOff(*t2));
  m2->data_off = MutableMeta()->data_off;
  auto violations = db_->VerifyIntegrity();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].message.find("overlap"), std::string::npos);
}

TEST_F(IntegrityTest, DetectsBitsBeyondCapacity) {
  const TableMetaRaw* m = db_->image()->table_meta(table_);
  // Capacity 200 -> last word holds bits 192..199; set bit 205.
  uint64_t word;
  DbPtr off = BitmapWordOff(m->bitmap_off, 199);
  std::memcpy(&word, db_->UnsafeRawBase() + off, 8);
  word |= 1ull << 13;  // Slot 205.
  std::memcpy(db_->UnsafeRawBase() + off, &word, 8);
  auto violations = db_->VerifyIntegrity();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].message.find("capacity"), std::string::npos);
}

TEST_F(IntegrityTest, StructuralDamageRepairedByExplicitRecovery) {
  // A wild write shreds the table's directory entry. The codeword audit
  // would catch it too, but here the *structural* check diagnoses it and
  // drives explicit recovery. The lower time bound matters: without it,
  // the conservative window reaches back past the table's own creation
  // and deletes the creating transaction.
  Lsn before_damage = db_->CurrentLsn();
  FaultInjector inject(db_.get(), 3);
  inject.WildWriteAt(TableMetaOff(table_) + 4, "\xFF\xFF\xFF\xFF\xFF\xFF");
  auto violations = db_->VerifyIntegrity();
  ASSERT_FALSE(violations.empty());

  std::vector<CorruptRange> ranges;
  for (const auto& v : violations) ranges.push_back({v.off, v.len});
  ASSERT_OK(db_->RecoverFromCorruption(ranges, before_damage));

  EXPECT_TRUE(db_->VerifyIntegrity().empty());
  auto t = db_->FindTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(db_->CountRecords(*t), 20u);
}

// ---------- Full-system stress: workers + checkpoints + auditor ----------

TEST(SystemStress, WorkersCheckpointsAndAuditorRace) {
  TempDir dir;
  TpcbConfig cfg;
  cfg.accounts = 400;
  cfg.tellers = 40;
  cfg.branches = 4;
  cfg.ops_per_txn = 25;
  cfg.history_capacity = 5000;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  opts.arena_size =
      std::max<uint64_t>(opts.arena_size, cfg.MinArenaSize(opts.page_size));
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok());
  TpcbWorkload workload(db->get(), cfg);
  ASSERT_OK(workload.Setup());

  std::atomic<bool> corruption{false};
  BackgroundAuditor::Options aopts;
  aopts.interval = std::chrono::milliseconds(1);
  aopts.slice_bytes = 512 << 10;
  BackgroundAuditor auditor(db->get(), aopts,
                            [&](const AuditReport&) { corruption = true; });
  auditor.Start();

  std::atomic<bool> stop_ckpt{false};
  std::thread ckpt_thread([&] {
    while (!stop_ckpt) {
      Status s = (*db)->Checkpoint();
      EXPECT_TRUE(s.ok()) << s.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  auto rate = workload.RunConcurrent(3, 1500);
  stop_ckpt = true;
  ckpt_thread.join();
  auditor.Stop();

  ASSERT_TRUE(rate.ok()) << rate.status().ToString();
  EXPECT_FALSE(corruption.load()) << "false corruption alarm under load";
  ASSERT_OK(workload.CheckConsistency());
  EXPECT_TRUE((*db)->VerifyIntegrity().empty());

  // And the whole thing still crash-recovers.
  ASSERT_OK((*db)->CrashAndRecover());
  TpcbWorkload check(db->get(), cfg);
  ASSERT_OK(check.Attach());
  ASSERT_OK(check.CheckConsistency());
  EXPECT_EQ((*db)->CountRecords(check.history()), 1500u);
}

}  // namespace
}  // namespace cwdb
