// Savepoint (partial rollback) tests: scoping, nesting, interaction with
// inserts/deletes/updates and indexes, invalidation rules, crash
// interaction, and codeword consistency through partial rollbacks.

#include <gtest/gtest.h>

#include "index/hash_index.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

class SavepointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), ProtectionScheme::kDataCodeword));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "t", 64, 64);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    auto rid = db_->Insert(*txn, table_, std::string(64, 'a'));
    ASSERT_TRUE(rid.ok());
    slot_ = rid->slot;
    ASSERT_OK(db_->Commit(*txn));
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
  uint32_t slot_ = 0;
};

TEST_F(SavepointTest, PartialRollbackKeepsEarlierWork) {
  auto txn = db_->Begin();
  ASSERT_OK(db_->Update(*txn, table_, slot_, 0, "KEEP"));
  auto sp = db_->CreateSavepoint(*txn);
  ASSERT_TRUE(sp.ok());
  ASSERT_OK(db_->Update(*txn, table_, slot_, 8, "DROP"));
  auto extra = db_->Insert(*txn, table_, std::string(64, 'x'));
  ASSERT_TRUE(extra.ok());
  ASSERT_OK(db_->RollbackToSavepoint(*txn, *sp));

  // Post-savepoint work gone, pre-savepoint work intact, txn usable.
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slot_, &got));
  EXPECT_EQ(got.substr(0, 4), "KEEP");
  EXPECT_EQ(got.substr(8, 4), "aaaa");
  EXPECT_TRUE(db_->Read(*txn, table_, extra->slot, &got).IsNotFound());
  ASSERT_OK(db_->Update(*txn, table_, slot_, 16, "MORE"));
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  ASSERT_OK(db_->Read(*txn, table_, slot_, &got));
  EXPECT_EQ(got.substr(0, 4), "KEEP");
  EXPECT_EQ(got.substr(16, 4), "MORE");
  ASSERT_OK(db_->Commit(*txn));
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST_F(SavepointTest, NestedSavepoints) {
  auto txn = db_->Begin();
  auto sp1 = db_->CreateSavepoint(*txn);
  ASSERT_TRUE(sp1.ok());
  ASSERT_OK(db_->Update(*txn, table_, slot_, 0, "ONE!"));
  auto sp2 = db_->CreateSavepoint(*txn);
  ASSERT_TRUE(sp2.ok());
  ASSERT_OK(db_->Update(*txn, table_, slot_, 8, "TWO!"));

  ASSERT_OK(db_->RollbackToSavepoint(*txn, *sp2));
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slot_, &got));
  EXPECT_EQ(got.substr(0, 4), "ONE!");
  EXPECT_EQ(got.substr(8, 4), "aaaa");

  ASSERT_OK(db_->RollbackToSavepoint(*txn, *sp1));
  ASSERT_OK(db_->Read(*txn, table_, slot_, &got));
  EXPECT_EQ(got, std::string(64, 'a'));

  // sp2 is now past the end of the undo log: invalid.
  EXPECT_FALSE(db_->RollbackToSavepoint(*txn, *sp2).ok());
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(SavepointTest, RepeatedRollbackToSameSavepoint) {
  auto txn = db_->Begin();
  auto sp = db_->CreateSavepoint(*txn);
  ASSERT_TRUE(sp.ok());
  for (int round = 0; round < 3; ++round) {
    ASSERT_OK(db_->Update(*txn, table_, slot_, 0,
                          "try" + std::to_string(round)));
    ASSERT_OK(db_->RollbackToSavepoint(*txn, *sp));
  }
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slot_, &got));
  EXPECT_EQ(got, std::string(64, 'a'));
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(SavepointTest, FullAbortAfterPartialRollback) {
  auto txn = db_->Begin();
  ASSERT_OK(db_->Update(*txn, table_, slot_, 0, "PRE!"));
  auto sp = db_->CreateSavepoint(*txn);
  ASSERT_TRUE(sp.ok());
  ASSERT_OK(db_->Update(*txn, table_, slot_, 8, "POST"));
  ASSERT_OK(db_->RollbackToSavepoint(*txn, *sp));
  ASSERT_OK(db_->Abort(*txn));

  txn = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn, table_, slot_, &got));
  EXPECT_EQ(got, std::string(64, 'a'));  // Everything undone.
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(SavepointTest, CrashAfterPartialRollbackRecoversCommittedState) {
  auto txn = db_->Begin();
  ASSERT_OK(db_->Update(*txn, table_, slot_, 0, "KEEP"));
  auto sp = db_->CreateSavepoint(*txn);
  ASSERT_TRUE(sp.ok());
  ASSERT_OK(db_->Update(*txn, table_, slot_, 8, "DROP"));
  ASSERT_OK(db_->RollbackToSavepoint(*txn, *sp));
  ASSERT_OK(db_->Commit(*txn));

  ASSERT_OK(db_->CrashAndRecover());
  auto txn2 = db_->Begin();
  std::string got;
  ASSERT_OK(db_->Read(*txn2, table_, slot_, &got));
  EXPECT_EQ(got.substr(0, 4), "KEEP");
  EXPECT_EQ(got.substr(8, 4), "aaaa");
  ASSERT_OK(db_->Commit(*txn2));
}

TEST_F(SavepointTest, IndexChangesRollBackToo) {
  auto txn = db_->Begin();
  auto idx = HashIndex::Create(db_.get(), *txn, "sp_idx", 8, 64);
  ASSERT_TRUE(idx.ok());
  ASSERT_OK(idx->Insert(*txn, 1, 10));
  auto sp = db_->CreateSavepoint(*txn);
  ASSERT_TRUE(sp.ok());
  ASSERT_OK(idx->Insert(*txn, 2, 20));
  ASSERT_OK(idx->Erase(*txn, 1));
  ASSERT_OK(db_->RollbackToSavepoint(*txn, *sp));
  EXPECT_TRUE(idx->Lookup(*txn, 1).ok());
  EXPECT_TRUE(idx->Lookup(*txn, 2).status().IsNotFound());
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(SavepointTest, SavepointRefusedMidOperation) {
  auto txn = db_->Begin();
  DbPtr off = db_->image()->RecordOff(table_, slot_);
  ASSERT_OK(db_->txns()->BeginOp(*txn, OpCode::kUpdate, kMaxTables,
                                 kInvalidSlot, std::nullopt, off, 4));
  EXPECT_FALSE(db_->CreateSavepoint(*txn).ok());
  ASSERT_OK(db_->txns()->AbortOp(*txn));
  ASSERT_OK(db_->Abort(*txn));
}

}  // namespace
}  // namespace cwdb
