// TPC-B workload tests (scaled down from the paper's §5.2 sizes for test
// speed): consistency invariants under every protection scheme, crash
// mid-workload, checkpoints mid-workload, and corruption during the
// workload followed by delete-transaction recovery.

#include "workload/tpcb.h"

#include <gtest/gtest.h>

#include "faultinject/fault_injector.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

TpcbConfig SmallConfig() {
  TpcbConfig cfg;
  cfg.accounts = 1000;
  cfg.tellers = 100;
  cfg.branches = 10;
  cfg.ops_per_txn = 50;
  cfg.history_capacity = 4000;
  return cfg;
}

DatabaseOptions TpcbDbOptions(const std::string& path,
                              ProtectionScheme scheme) {
  DatabaseOptions opts = SmallDbOptions(path, scheme);
  TpcbConfig cfg = SmallConfig();
  opts.arena_size =
      std::max<uint64_t>(opts.arena_size, cfg.MinArenaSize(opts.page_size));
  return opts;
}

class TpcbSchemeTest : public ::testing::TestWithParam<ProtectionScheme> {
 protected:
  TempDir dir_;
};

TEST_P(TpcbSchemeTest, InvariantsHoldAfterRun) {
  auto db = Database::Open(TpcbDbOptions(dir_.path(), GetParam()));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  TpcbWorkload wl(db->get(), SmallConfig());
  ASSERT_OK(wl.Setup());
  ASSERT_OK(wl.RunOps(500));
  ASSERT_OK(wl.CheckConsistency());
  EXPECT_EQ((*db)->CountRecords(wl.history()), 500u);
}

TEST_P(TpcbSchemeTest, InvariantsHoldAfterCrashRecovery) {
  auto db = Database::Open(TpcbDbOptions(dir_.path(), GetParam()));
  ASSERT_TRUE(db.ok());
  TpcbWorkload wl(db->get(), SmallConfig());
  ASSERT_OK(wl.Setup());
  ASSERT_OK(wl.RunOps(300));
  ASSERT_OK((*db)->Checkpoint());
  ASSERT_OK(wl.RunOps(200));

  ASSERT_OK((*db)->CrashAndRecover());

  TpcbWorkload wl2(db->get(), SmallConfig());
  ASSERT_OK(wl2.Attach());
  ASSERT_OK(wl2.CheckConsistency());
  // All 500 ops were in committed transactions (multiples of 50).
  EXPECT_EQ((*db)->CountRecords(wl2.history()), 500u);
  // And the workload keeps running after recovery.
  ASSERT_OK(wl2.RunOps(100));
  ASSERT_OK(wl2.CheckConsistency());
}

TEST_P(TpcbSchemeTest, CrashMidTransactionLosesOnlyOpenTxn) {
  TpcbConfig cfg = SmallConfig();
  cfg.ops_per_txn = 1000000;  // Never commits on its own.
  auto db = Database::Open(TpcbDbOptions(dir_.path(), GetParam()));
  ASSERT_TRUE(db.ok());
  TpcbWorkload wl(db->get(), cfg);
  ASSERT_OK(wl.Setup());
  // RunOps commits the trailing open transaction, so run two batches: one
  // committed, one that stays open and dies with the crash.
  ASSERT_OK(wl.RunOps(100));  // Committed at the end of RunOps.
  auto txn = (*db)->Begin();
  // A hand-rolled half-operation that will be rolled back.
  std::string hist(cfg.record_size, 'h');
  ASSERT_TRUE((*db)->Insert(*txn, wl.history(), hist).ok());

  ASSERT_OK((*db)->CrashAndRecover());
  TpcbWorkload wl2(db->get(), cfg);
  ASSERT_OK(wl2.Attach());
  ASSERT_OK(wl2.CheckConsistency());
  EXPECT_EQ((*db)->CountRecords(wl2.history()), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, TpcbSchemeTest,
    ::testing::Values(ProtectionScheme::kNone, ProtectionScheme::kDataCodeword,
                      ProtectionScheme::kReadPrecheck,
                      ProtectionScheme::kReadLog,
                      ProtectionScheme::kCodewordReadLog,
                      ProtectionScheme::kHardware),
    [](const ::testing::TestParamInfo<ProtectionScheme>& info) {
      switch (info.param) {
        case ProtectionScheme::kNone: return std::string("Baseline");
        case ProtectionScheme::kDataCodeword: return std::string("DataCW");
        case ProtectionScheme::kReadPrecheck: return std::string("Precheck");
        case ProtectionScheme::kReadLog: return std::string("ReadLog");
        case ProtectionScheme::kCodewordReadLog: return std::string("CWReadLog");
        case ProtectionScheme::kHardware: return std::string("Hardware");
      }
      return std::string("Unknown");
    });

TEST(TpcbCorruption, WorkloadCarriesCorruptionAndRecoveryDeletesIt) {
  // End-to-end: wild write hits an account record mid-workload; later
  // operations read it (carrying corruption into tellers/branches/history);
  // the audit catches it and delete-transaction recovery removes exactly
  // the affected transactions. Invariants hold afterwards.
  TempDir dir;
  auto db =
      Database::Open(TpcbDbOptions(dir.path(), ProtectionScheme::kReadLog));
  ASSERT_TRUE(db.ok());
  TpcbConfig cfg = SmallConfig();
  TpcbWorkload wl(db->get(), cfg);
  ASSERT_OK(wl.Setup());
  ASSERT_OK(wl.RunOps(100));
  ASSERT_OK((*db)->Checkpoint());

  // Corrupt the balance of account 0 behind the system's back.
  FaultInjector inject(db->get(), 77);
  DbPtr off = (*db)->image()->RecordOff(wl.accounts(), 0) +
              TpcbLayout::kBalanceOff;
  int64_t garbage = 0x7777777777777777;
  inject.WildWriteAt(off, Slice(reinterpret_cast<const char*>(&garbage), 8));

  ASSERT_OK(wl.RunOps(200));  // Some of these read account 0.

  auto report = (*db)->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  ASSERT_OK((*db)->CrashAndRecover());

  // Some transactions were deleted (account 0 is hot enough in 200 ops
  // over 1000 accounts with uniform access that at least one read it —
  // if not, the test still passes consistency but asserts report sanity).
  TpcbWorkload wl2(db->get(), cfg);
  ASSERT_OK(wl2.Attach());
  ASSERT_OK(wl2.CheckConsistency());
  // The corrupted balance never ended up in the recovered image.
  int64_t balance;
  std::memcpy(&balance, (*db)->image()->At(off), 8);
  EXPECT_NE(balance, garbage);
}

TEST(TpcbReadMix, InvariantsHoldWithInquiries) {
  TempDir dir;
  TpcbConfig cfg = SmallConfig();
  cfg.read_fraction = 0.5;
  auto db = Database::Open(
      TpcbDbOptions(dir.path(), ProtectionScheme::kReadPrecheck));
  ASSERT_TRUE(db.ok());
  TpcbWorkload wl(db->get(), cfg);
  ASSERT_OK(wl.Setup());
  ASSERT_OK(wl.RunOps(600));
  ASSERT_OK(wl.CheckConsistency());
  // Roughly half the operations were inquiries: fewer history rows than
  // operations, but more than a third (600 ops, p=0.5, loose bounds).
  uint64_t rows = (*db)->CountRecords(wl.history());
  EXPECT_GT(rows, 200u);
  EXPECT_LT(rows, 400u);
}

TEST(TpcbReadMix, PureReadsLeaveNoHistory) {
  TempDir dir;
  TpcbConfig cfg = SmallConfig();
  cfg.read_fraction = 1.0;
  auto db =
      Database::Open(TpcbDbOptions(dir.path(), ProtectionScheme::kReadLog));
  ASSERT_TRUE(db.ok());
  TpcbWorkload wl(db->get(), cfg);
  ASSERT_OK(wl.Setup());
  uint64_t log_before = (*db)->GetStats().log_bytes_appended;
  ASSERT_OK(wl.RunOps(200));
  ASSERT_OK(wl.CheckConsistency());
  EXPECT_EQ((*db)->CountRecords(wl.history()), 0u);
  // Under Read Logging even a pure-read workload appends to the log (the
  // audit trail), but only identity records — a few dozen bytes per op.
  uint64_t bytes = (*db)->GetStats().log_bytes_appended - log_before;
  EXPECT_GT(bytes, 200u * 20u);
  EXPECT_LT(bytes, 200u * 200u);
}

TEST(TpcbConfigTest, MinArenaSizeFitsWorkload) {
  TpcbConfig cfg = SmallConfig();
  uint64_t min = cfg.MinArenaSize(4096);
  // Loose sanity: at least the record bytes of all tables.
  uint64_t raw = (cfg.accounts + cfg.tellers + cfg.branches +
                  cfg.history_capacity) *
                 cfg.record_size;
  EXPECT_GE(min, raw);
  EXPECT_LT(min, raw * 2 + (1 << 20));
}

}  // namespace
}  // namespace cwdb
