// Unit tests for the write-ahead log: record encode/decode round trips,
// system log framing, flush/durability accounting, torn-tail handling, and
// the log reader.

#include <gtest/gtest.h>

#include "common/crashpoint.h"
#include "common/file_util.h"
#include "tests/test_util.h"
#include "wal/log_record.h"
#include "wal/system_log.h"

namespace cwdb {
namespace {

TEST(LogRecord, TxnRecordsRoundTrip) {
  for (auto encode : {EncodeBeginTxn, EncodeCommitTxn, EncodeAbortTxn}) {
    std::string buf;
    encode(&buf, 42);
    LogRecord rec;
    ASSERT_TRUE(DecodeLogRecord(buf, &rec));
    EXPECT_EQ(rec.txn, 42u);
  }
  std::string buf;
  EncodeBeginTxn(&buf, 7);
  LogRecord rec;
  ASSERT_TRUE(DecodeLogRecord(buf, &rec));
  EXPECT_EQ(rec.type, LogRecordType::kBeginTxn);
}

TEST(LogRecord, PhysRedoRoundTrip) {
  std::string buf;
  EncodePhysRedo(&buf, 9, 0x1234, Slice("afterbytes"), nullptr);
  LogRecord rec;
  ASSERT_TRUE(DecodeLogRecord(buf, &rec));
  EXPECT_EQ(rec.type, LogRecordType::kPhysRedo);
  EXPECT_EQ(rec.txn, 9u);
  EXPECT_EQ(rec.off, 0x1234u);
  EXPECT_EQ(rec.len, 10u);
  EXPECT_FALSE(rec.has_cksum);
  EXPECT_EQ(rec.after, "afterbytes");
}

TEST(LogRecord, PhysRedoWithChecksumRoundTrip) {
  codeword_t cksum = 0xABCD1234;
  std::string buf;
  EncodePhysRedo(&buf, 9, 8, Slice("xy"), &cksum);
  LogRecord rec;
  ASSERT_TRUE(DecodeLogRecord(buf, &rec));
  EXPECT_TRUE(rec.has_cksum);
  EXPECT_EQ(rec.cksum, 0xABCD1234u);
  EXPECT_EQ(rec.after, "xy");
}

TEST(LogRecord, ReadLogRoundTrip) {
  std::string buf;
  EncodeReadLog(&buf, 3, 512, 100, nullptr);
  LogRecord rec;
  ASSERT_TRUE(DecodeLogRecord(buf, &rec));
  EXPECT_EQ(rec.type, LogRecordType::kReadLog);
  EXPECT_EQ(rec.off, 512u);
  EXPECT_EQ(rec.len, 100u);
  EXPECT_FALSE(rec.has_cksum);

  codeword_t cksum = 55;
  buf.clear();
  EncodeReadLog(&buf, 3, 512, 100, &cksum);
  ASSERT_TRUE(DecodeLogRecord(buf, &rec));
  EXPECT_TRUE(rec.has_cksum);
  EXPECT_EQ(rec.cksum, 55u);
}

TEST(LogRecord, BeginOpRoundTrip) {
  std::string buf;
  EncodeBeginOp(&buf, 5, 77, 1, OpCode::kInsert, 3, 12, 0x9000, 24);
  LogRecord rec;
  ASSERT_TRUE(DecodeLogRecord(buf, &rec));
  EXPECT_EQ(rec.type, LogRecordType::kBeginOp);
  EXPECT_EQ(rec.op_id, 77u);
  EXPECT_EQ(rec.level, 1);
  EXPECT_EQ(rec.opcode, OpCode::kInsert);
  EXPECT_EQ(rec.table, 3);
  EXPECT_EQ(rec.slot, 12u);
  EXPECT_EQ(rec.off, 0x9000u);
  EXPECT_EQ(rec.len, 24u);
}

TEST(LogRecord, CommitOpRoundTrip) {
  LogicalUndo undo;
  undo.code = UndoCode::kReinsertSlot;
  undo.table = 2;
  undo.slot = 9;
  undo.field_off = 4;
  undo.raw_off = 0xBEEF;
  undo.payload = "oldrecordbytes";
  std::string buf;
  EncodeCommitOp(&buf, 5, 77, 1, undo);
  LogRecord rec;
  ASSERT_TRUE(DecodeLogRecord(buf, &rec));
  EXPECT_EQ(rec.type, LogRecordType::kCommitOp);
  EXPECT_EQ(rec.undo.code, UndoCode::kReinsertSlot);
  EXPECT_EQ(rec.undo.table, 2);
  EXPECT_EQ(rec.undo.slot, 9u);
  EXPECT_EQ(rec.undo.field_off, 4u);
  EXPECT_EQ(rec.undo.raw_off, 0xBEEFu);
  EXPECT_EQ(rec.undo.payload, "oldrecordbytes");
}

TEST(LogRecord, RejectsGarbage) {
  LogRecord rec;
  EXPECT_FALSE(DecodeLogRecord(Slice("\xFFgarbage", 8), &rec));
  EXPECT_FALSE(DecodeLogRecord(Slice("", 0), &rec));
  // Truncated phys redo (claims 100 bytes of after-image, has none).
  std::string buf;
  EncodePhysRedo(&buf, 1, 0, Slice("0123456789"), nullptr);
  EXPECT_FALSE(DecodeLogRecord(Slice(buf.data(), buf.size() - 5), &rec));
}

class SystemLogTest : public ::testing::Test {
 protected:
  std::string LogPath() { return dir_.path() + "/test.log"; }
  TempDir dir_;
};

TEST_F(SystemLogTest, AppendAssignsMonotonicLsns) {
  auto log = SystemLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  Lsn a = (*log)->Append("one");
  Lsn b = (*log)->Append("two");
  EXPECT_LT(a, b);
  EXPECT_EQ((*log)->end_of_stable_log(), 0u);
  EXPECT_GT((*log)->CurrentLsn(), b);
}

TEST_F(SystemLogTest, FlushMakesRecordsDurable) {
  {
    auto log = SystemLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    (*log)->Append("alpha");
    (*log)->Append("beta");
    ASSERT_OK((*log)->Flush());
    EXPECT_EQ((*log)->end_of_stable_log(), (*log)->CurrentLsn());
  }
  auto reader = LogReader::Open(LogPath(), 0, kInvalidLsn);
  ASSERT_TRUE(reader.ok());
  // Payloads are not LogRecords here; use raw framing via a fresh reader...
  // Instead verify via SystemLog reopen: stable size preserved.
  auto log2 = SystemLog::Open(LogPath());
  ASSERT_TRUE(log2.ok());
  EXPECT_GT((*log2)->end_of_stable_log(), 0u);
}

TEST_F(SystemLogTest, DiscardTailLosesUnflushed) {
  auto log = SystemLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  (*log)->Append("kept");
  ASSERT_OK((*log)->Flush());
  Lsn stable = (*log)->end_of_stable_log();
  (*log)->Append("lost");
  (*log)->DiscardTail();
  EXPECT_EQ((*log)->CurrentLsn(), stable);
}

TEST_F(SystemLogTest, TornTailIsTruncatedOnOpen) {
  uint64_t good = 0;
  {
    auto log = SystemLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    std::string payload;
    EncodeBeginTxn(&payload, 1);
    (*log)->Append(payload);
    ASSERT_OK((*log)->Flush());
    good = (*log)->end_of_stable_log();
  }
  // Garbage at the write frontier simulating a torn write. (The file is
  // longer than the stable prefix — preallocated zeros — so the frontier
  // is end_of_stable_log, not the file size.)
  std::string contents;
  ASSERT_OK(ReadFileToString(LogPath(), &contents));
  contents.resize(good);
  contents += "\x10\x00\x00\x00TORN";
  ASSERT_OK(WriteFileAtomic(LogPath(), contents));

  auto log = SystemLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->end_of_stable_log(), good);

  // The reader also stops at the valid prefix.
  auto reader = LogReader::Open(LogPath(), 0, kInvalidLsn);
  ASSERT_TRUE(reader.ok());
  LogRecord rec;
  Lsn lsn;
  int n = 0;
  while ((*reader)->Next(&rec, &lsn)) ++n;
  EXPECT_EQ(n, 1);
  EXPECT_EQ((*reader)->position(), good);
}

TEST_F(SystemLogTest, CorruptMiddleFrameEndsLogThere) {
  uint64_t stable = 0;
  {
    auto log = SystemLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    std::string p1, p2;
    EncodeBeginTxn(&p1, 1);
    EncodeCommitTxn(&p2, 1);
    (*log)->Append(p1);
    (*log)->Append(p2);
    ASSERT_OK((*log)->Flush());
    stable = (*log)->end_of_stable_log();
  }
  std::string contents;
  ASSERT_OK(ReadFileToString(LogPath(), &contents));
  contents[stable / 2] ^= 0x01;  // Flip a bit mid-frames.
  ASSERT_OK(WriteFileAtomic(LogPath(), contents));

  auto reader = LogReader::Open(LogPath(), 0, kInvalidLsn);
  ASSERT_TRUE(reader.ok());
  LogRecord rec;
  int n = 0;
  while ((*reader)->Next(&rec, nullptr)) ++n;
  EXPECT_LT(n, 2);  // CRC stops the scan at the corrupt frame.
}

TEST_F(SystemLogTest, PreallocatedZeroTailIsCleanEndOfLog) {
  uint64_t stable = 0;
  {
    auto log = SystemLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    std::string p;
    EncodeBeginTxn(&p, 1);
    (*log)->Append(p);
    ASSERT_OK((*log)->Flush());
    stable = (*log)->end_of_stable_log();
  }
  // The drainer zero-extends past the frontier so steady-state fsyncs sync
  // pure data; the file is therefore longer than the stable prefix.
  std::string contents;
  ASSERT_OK(ReadFileToString(LogPath(), &contents));
  ASSERT_GT(contents.size(), stable);
  EXPECT_EQ(contents.find_first_not_of('\0', stable), std::string::npos);

  // Reopen reads the zero tail as clean preallocation: the stable end is
  // exactly the frames, and nothing is classified as in-place damage.
  auto log = SystemLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->end_of_stable_log(), stable);
  EXPECT_FALSE((*log)->tail_scan().damaged);

  auto reader = LogReader::Open(LogPath(), 0, kInvalidLsn);
  ASSERT_TRUE(reader.ok());
  LogRecord rec;
  int n = 0;
  while ((*reader)->Next(&rec, nullptr)) ++n;
  EXPECT_EQ(n, 1);
  EXPECT_EQ((*reader)->position(), stable);
}

TEST_F(SystemLogTest, ReaderHonorsStartAndLimit) {
  Lsn second;
  {
    auto log = SystemLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    std::string p;
    EncodeBeginTxn(&p, 1);
    (*log)->Append(p);
    p.clear();
    EncodeBeginTxn(&p, 2);
    second = (*log)->Append(p);
    p.clear();
    EncodeBeginTxn(&p, 3);
    (*log)->Append(p);
    ASSERT_OK((*log)->Flush());
  }
  auto reader = LogReader::Open(LogPath(), second, kInvalidLsn);
  ASSERT_TRUE(reader.ok());
  LogRecord rec;
  ASSERT_TRUE((*reader)->Next(&rec, nullptr));
  EXPECT_EQ(rec.txn, 2u);
  ASSERT_TRUE((*reader)->Next(&rec, nullptr));
  EXPECT_EQ(rec.txn, 3u);
  EXPECT_FALSE((*reader)->Next(&rec, nullptr));

  auto limited = LogReader::Open(LogPath(), 0, second);
  ASSERT_TRUE(limited.ok());
  int n = 0;
  while ((*limited)->Next(&rec, nullptr)) ++n;
  EXPECT_EQ(n, 1);
}

TEST_F(SystemLogTest, FailedFlushIsCountedAndRetryCoversBatchOnce) {
  auto log = SystemLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  std::string p;
  EncodeBeginTxn(&p, 1);
  Lsn first = (*log)->Append(p);
  p.clear();
  EncodeBeginTxn(&p, 2);
  (*log)->Append(p);

  // First flush attempt dies on the injected fdatasync error: the batch
  // must be restored to the tail (nothing durable) and counted as exactly
  // one failure, zero completed flushes.
  crashpoint::Arm("wal.flush.fdatasync",
                  {crashpoint::Mode::kEio, /*countdown=*/1, /*param=*/0});
  Status s = (*log)->Flush();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ((*log)->flush_failures(), 1u);
  EXPECT_EQ((*log)->flush_count(), 0u);
  EXPECT_EQ((*log)->end_of_stable_log(), 0u);

  // The point disarmed itself after firing; the retry succeeds and the
  // stable log holds each record exactly once, at its original LSN.
  ASSERT_OK((*log)->Flush());
  EXPECT_EQ((*log)->flush_failures(), 1u);
  EXPECT_EQ((*log)->flush_count(), 1u);

  auto reader = LogReader::Open(LogPath(), 0, kInvalidLsn);
  ASSERT_TRUE(reader.ok());
  LogRecord rec;
  Lsn lsn = 0;
  ASSERT_TRUE((*reader)->Next(&rec, &lsn));
  EXPECT_EQ(rec.txn, 1u);
  EXPECT_EQ(lsn, first);
  ASSERT_TRUE((*reader)->Next(&rec, nullptr));
  EXPECT_EQ(rec.txn, 2u);
  EXPECT_FALSE((*reader)->Next(&rec, nullptr));
  crashpoint::DisarmAll();
}

TEST_F(SystemLogTest, BytesAppendedAccounting) {
  auto log = SystemLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->bytes_appended(), 0u);
  (*log)->Append("12345");
  EXPECT_EQ((*log)->bytes_appended(), 8u + 5u);  // Frame header + payload.
}

}  // namespace
}  // namespace cwdb
