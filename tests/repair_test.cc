// Tests for the error-correcting parity repair tier (protect/parity_repair):
// the standalone ParityTier XOR algebra, the checkpoint sidecar codec, the
// standalone cold-image verify/repair pass that cwdb_ctl check runs, and the
// live detect -> locate -> repair -> fallback pipeline wired through
// Database::TryRepairRanges and the read precheck. The final test is the
// concurrency stress the tier was designed around (run it under TSan: the
// repair path must be race-free against live writer threads): eight TPC-B
// writers keep committing while wild single-region writes are injected,
// detected by range audits, and repaired in place — with no lost updates.

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/codeword.h"
#include "common/json.h"
#include "common/random.h"
#include "core/database.h"
#include "faultinject/fault_injector.h"
#include "obs/forensics.h"
#include "protect/parity_repair.h"
#include "storage/shard_map.h"
#include "tests/test_util.h"
#include "workload/tpcb.h"

namespace cwdb {
namespace {

constexpr uint32_t kRegion = 512;

std::vector<uint8_t> PatternArena(uint64_t size, uint64_t seed) {
  std::vector<uint8_t> bytes(size);
  Random rng(seed);
  for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng.Uniform(256));
  return bytes;
}

std::vector<JsonValue> LoadIncidents(const std::string& dir) {
  size_t skipped = 0;
  Result<std::vector<JsonValue>> r =
      LoadIncidentFile(dir + "/incidents.jsonl", &skipped);
  EXPECT_EQ(skipped, 0u);
  return r.ok() ? *r : std::vector<JsonValue>();
}

const JsonValue* FindBySource(const std::vector<JsonValue>& incidents,
                              const std::string& source) {
  for (const JsonValue& inc : incidents) {
    if (inc.Str("source") == source) return &inc;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// ParityTier algebra.

TEST(ParityTier, ReconstructsCorruptRegionFromGroup) {
  const uint64_t arena = 64 * kRegion;
  ShardMap shards(arena, 2, 4096);
  ParityTier tier(shards, kRegion, 4);
  EXPECT_EQ(tier.space_overhead_bytes(), arena / 4);

  std::vector<uint8_t> bytes = PatternArena(arena, 1);
  const std::vector<uint8_t> golden = bytes;
  tier.RebuildAll(bytes.data());

  std::vector<uint64_t> members;
  tier.GroupMembers(5, &members);
  ASSERT_EQ(members.size(), 4u);
  EXPECT_EQ(members.front(), 4u);
  EXPECT_EQ(members.back(), 7u);

  // A wild write the update interface never saw.
  std::memset(&bytes[5 * kRegion + 17], 0xEE, 40);

  std::vector<uint8_t> out(kRegion);
  tier.ReconstructRegion(bytes.data(), 5, out.data());
  EXPECT_EQ(0, std::memcmp(out.data(), &golden[5 * kRegion], kRegion));
}

TEST(ParityTier, DeltaMaintenanceCommutesWithRepair) {
  const uint64_t arena = 32 * kRegion;
  ShardMap shards(arena, 1, 4096);
  ParityTier tier(shards, kRegion, 8);

  std::vector<uint8_t> bytes = PatternArena(arena, 2);
  tier.RebuildAll(bytes.data());

  // Corruption lands in region 2 ...
  std::vector<uint8_t> golden2(bytes.begin() + 2 * kRegion,
                               bytes.begin() + 3 * kRegion);
  bytes[2 * kRegion + 100] ^= 0x5A;

  // ... and a *legitimate* prescribed update then modifies region 1 of the
  // same group, folding its delta into the column. XOR linearity must keep
  // region 2 reconstructable as if the wild write never happened.
  std::vector<uint8_t> before(bytes.begin() + kRegion + 8,
                              bytes.begin() + kRegion + 8 + 64);
  for (int i = 0; i < 64; ++i) bytes[kRegion + 8 + i] += 3;
  tier.ApplyDelta(kRegion + 8, before.data(), &bytes[kRegion + 8], 64);

  std::vector<uint8_t> out(kRegion);
  tier.ReconstructRegion(bytes.data(), 2, out.data());
  EXPECT_EQ(0, std::memcmp(out.data(), golden2.data(), kRegion));
}

// ---------------------------------------------------------------------------
// Sidecar codec + standalone cold-image verify/repair (the cwdb_ctl path).

ParitySidecar MakeSidecar(const std::vector<uint8_t>& bytes,
                          uint32_t group_regions) {
  const uint64_t arena = bytes.size();
  ShardMap shards(arena, 1, 4096);
  ParityTier tier(shards, kRegion, group_regions);
  tier.RebuildAll(bytes.data());

  ParitySidecar sc;
  sc.ck_end = 42;
  sc.arena_size = arena;
  sc.region_size = kRegion;
  sc.group_regions = group_regions;
  sc.shards.emplace_back(0, arena);
  for (uint64_t r = 0; r < arena / kRegion; ++r) {
    sc.codewords.push_back(CodewordCompute(&bytes[r * kRegion], kRegion));
  }
  tier.AppendColumns(&sc.columns);
  return sc;
}

TEST(ParitySidecar, CodecRoundTripsAndRejectsDamage) {
  std::vector<uint8_t> bytes = PatternArena(32 * kRegion, 3);
  ParitySidecar sc = MakeSidecar(bytes, 8);

  std::string blob = EncodeParitySidecar(sc);
  Result<ParitySidecar> back = DecodeParitySidecar(Slice(blob));
  ASSERT_OK(back.status());
  EXPECT_EQ(back->ck_end, sc.ck_end);
  EXPECT_EQ(back->arena_size, sc.arena_size);
  EXPECT_EQ(back->region_size, sc.region_size);
  EXPECT_EQ(back->group_regions, sc.group_regions);
  EXPECT_EQ(back->shards, sc.shards);
  EXPECT_EQ(back->codewords, sc.codewords);
  EXPECT_EQ(back->columns, sc.columns);

  // A flipped byte or a truncation must be recognized, never trusted.
  std::string damaged = blob;
  damaged[damaged.size() / 2] ^= 0x01;
  EXPECT_TRUE(DecodeParitySidecar(Slice(damaged)).status().IsCorruption());
  EXPECT_TRUE(DecodeParitySidecar(Slice(blob.data(), blob.size() - 7))
                  .status()
                  .IsCorruption());
}

TEST(ParitySidecar, ColdImageRepairHonorsCorrectionBudget) {
  std::vector<uint8_t> bytes = PatternArena(32 * kRegion, 4);
  const std::vector<uint8_t> golden = bytes;
  ParitySidecar sc = MakeSidecar(bytes, 8);

  // Region 3: lone corruption in group 0 — reconstructable. Regions 10 and
  // 11: two corruptions in group 1 — beyond the one-region budget.
  bytes[3 * kRegion + 5] ^= 0xFF;
  bytes[10 * kRegion] ^= 0x01;
  bytes[11 * kRegion + 200] ^= 0x80;

  uint64_t verified = 0;
  std::vector<CorruptRange> detected =
      VerifyImageAgainstSidecar(sc, bytes.data(), &verified);
  EXPECT_EQ(verified, 32u);
  ASSERT_EQ(detected.size(), 3u);
  EXPECT_EQ(detected[0].off, 3 * kRegion);

  // Dry run (cwdb_ctl check without --repair): reports what *would* be
  // reconstructable without touching the image.
  std::vector<uint8_t> copy = bytes;
  ImageRepairReport dry;
  RepairImageWithSidecar(sc, copy.data(), detected, /*apply=*/false, &dry);
  ASSERT_EQ(dry.repaired.size(), 1u);
  EXPECT_EQ(dry.repaired[0].off, 3 * kRegion);
  ASSERT_EQ(dry.repair_deltas.size(), 1u);
  EXPECT_NE(dry.repair_deltas[0], 0u);
  EXPECT_EQ(dry.unrepaired.size(), 2u);
  EXPECT_EQ(copy, bytes);

  // Applying writes only the region that re-verified.
  ImageRepairReport rep;
  RepairImageWithSidecar(sc, bytes.data(), detected, /*apply=*/true, &rep);
  ASSERT_EQ(rep.repaired.size(), 1u);
  EXPECT_EQ(0, std::memcmp(&bytes[3 * kRegion], &golden[3 * kRegion],
                           kRegion));
  EXPECT_NE(0, std::memcmp(&bytes[10 * kRegion], &golden[10 * kRegion],
                           2 * kRegion));
}

// ---------------------------------------------------------------------------
// Live pipeline: audit detection -> in-place repair -> linked dossiers.

TEST(Repair, AuditDetectThenInPlaceRepairKeepsData) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kDataCodeword);
  opts.protection.parity_group_regions = 16;
  Result<std::unique_ptr<Database>> db = Database::Open(opts);
  ASSERT_OK(db.status());

  Result<Transaction*> txn = (*db)->Begin();
  ASSERT_OK(txn.status());
  Result<TableId> table = (*db)->CreateTable(*txn, "acct", kRegion, 16);
  ASSERT_OK(table.status());
  for (int i = 0; i < 8; ++i) {
    std::string rec(kRegion, static_cast<char>('a' + i));
    ASSERT_OK((*db)->Insert(*txn, *table, Slice(rec)).status());
  }
  ASSERT_OK((*db)->Commit(*txn));

  DbPtr off = (*db)->image()->RecordOff(*table, 3);
  FaultInjector inject(db->get(), 1);
  FaultInjector::Outcome hit = inject.WildWriteAt(off + 9, Slice("garbage!"));
  ASSERT_TRUE(hit.changed_bits);

  std::vector<CorruptRange> corrupt;
  EXPECT_TRUE((*db)->protection()->AuditAll(&corrupt).IsCorruption());
  ASSERT_EQ(corrupt.size(), 1u);

  EXPECT_TRUE((*db)->TryRepairRanges(corrupt, IncidentSource::kAudit));

  // The record reads back as committed and the image re-verifies clean.
  txn = (*db)->Begin();
  ASSERT_OK(txn.status());
  std::string rec;
  ASSERT_OK((*db)->Read(*txn, *table, 3, &rec));
  EXPECT_EQ(rec, std::string(kRegion, 'd'));
  ASSERT_OK((*db)->Commit(*txn));
  corrupt.clear();
  EXPECT_OK((*db)->protection()->AuditAll(&corrupt));
  EXPECT_EQ((*db)->metrics()->counter("repair.success")->Value(), 1u);

  // The episode is on disk as a linked detection + repair dossier pair.
  std::vector<JsonValue> incidents = LoadIncidents(dir.path());
  const JsonValue* detect = FindBySource(incidents, "audit");
  const JsonValue* repair = FindBySource(incidents, "repair");
  ASSERT_NE(detect, nullptr);
  ASSERT_NE(repair, nullptr);
  EXPECT_EQ(repair->U64("linked_incident_id"), detect->U64("id"));
}

TEST(Repair, BudgetExceededFallsBackToDeleteTxnRecovery) {
  TempDir dir;
  DatabaseOptions opts = SmallDbOptions(dir.path(), ProtectionScheme::kReadLog);
  opts.protection.parity_group_regions = 16;
  Result<std::unique_ptr<Database>> db = Database::Open(opts);
  ASSERT_OK(db.status());

  Result<Transaction*> txn = (*db)->Begin();
  ASSERT_OK(txn.status());
  Result<TableId> table = (*db)->CreateTable(*txn, "acct", kRegion, 16);
  ASSERT_OK(table.status());
  for (int i = 0; i < 8; ++i) {
    std::string rec(kRegion, static_cast<char>('a' + i));
    ASSERT_OK((*db)->Insert(*txn, *table, Slice(rec)).status());
  }
  ASSERT_OK((*db)->Commit(*txn));
  ASSERT_OK((*db)->Checkpoint());

  // Two wild writes in one parity group exceed the correction budget.
  DbPtr base = (*db)->image()->RecordOff(*table, 0);
  ASSERT_EQ(base % kRegion, 0u);
  uint64_t group_base = base / kRegion / 16 * 16 * kRegion;
  FaultInjector inject(db->get(), 2);
  ASSERT_TRUE(inject.WildWriteAt(group_base + 3, Slice("BAD1")).changed_bits);
  ASSERT_TRUE(
      inject.WildWriteAt(group_base + kRegion + 3, Slice("BAD2")).changed_bits);

  std::vector<CorruptRange> corrupt;
  EXPECT_TRUE((*db)->protection()->AuditAll(&corrupt).IsCorruption());
  ASSERT_EQ(corrupt.size(), 2u);

  std::vector<CorruptRange> unrepaired;
  EXPECT_FALSE(
      (*db)->TryRepairRanges(corrupt, IncidentSource::kAudit, &unrepaired));
  EXPECT_EQ(unrepaired.size(), 2u);
  EXPECT_EQ((*db)->metrics()->counter("repair.failed")->Value(), 2u);

  // The paper's fallback still works: note the corruption, run
  // delete-transaction recovery, come back clean.
  Result<AuditReport> audit = (*db)->Audit();
  ASSERT_OK(audit.status());
  EXPECT_FALSE(audit->clean);
  ASSERT_OK((*db)->CrashAndRecover());
  audit = (*db)->Audit();
  ASSERT_OK(audit.status());
  EXPECT_TRUE(audit->clean);

  txn = (*db)->Begin();
  ASSERT_OK(txn.status());
  std::string rec;
  ASSERT_OK((*db)->Read(*txn, *table, 5, &rec));
  EXPECT_EQ(rec, std::string(kRegion, 'f'));
  ASSERT_OK((*db)->Commit(*txn));
}

TEST(Repair, ReadPrecheckRepairsTransparently) {
  TempDir dir;
  DatabaseOptions opts =
      SmallDbOptions(dir.path(), ProtectionScheme::kReadPrecheck);
  opts.protection.parity_group_regions = 16;
  Result<std::unique_ptr<Database>> db = Database::Open(opts);
  ASSERT_OK(db.status());

  Result<Transaction*> txn = (*db)->Begin();
  ASSERT_OK(txn.status());
  Result<TableId> table = (*db)->CreateTable(*txn, "acct", kRegion, 16);
  ASSERT_OK(table.status());
  for (int i = 0; i < 4; ++i) {
    std::string rec(kRegion, static_cast<char>('a' + i));
    ASSERT_OK((*db)->Insert(*txn, *table, Slice(rec)).status());
  }
  ASSERT_OK((*db)->Commit(*txn));

  // NB: the codeword folds 32-bit lanes, so the garbage must not be a
  // repeated 4-byte word (its XOR contribution would self-cancel and the
  // wild write would be invisible to codewords — the paper's known blind
  // spot, not what this test is about).
  FaultInjector inject(db->get(), 3);
  DbPtr off = (*db)->image()->RecordOff(*table, 2);
  ASSERT_TRUE(inject.WildWriteAt(off + 40, Slice("wild@r1te")).changed_bits);

  // The precheck flags the region, repairs it from parity, and lets the
  // read proceed with the committed bytes — the transaction never sees the
  // corruption or a refusal.
  txn = (*db)->Begin();
  ASSERT_OK(txn.status());
  std::string rec;
  ASSERT_OK((*db)->Read(*txn, *table, 2, &rec));
  EXPECT_EQ(rec, std::string(kRegion, 'c'));
  ASSERT_OK((*db)->Commit(*txn));

  std::vector<JsonValue> incidents = LoadIncidents(dir.path());
  const JsonValue* detect = FindBySource(incidents, "read_precheck");
  const JsonValue* repair = FindBySource(incidents, "repair");
  ASSERT_NE(detect, nullptr);
  ASSERT_NE(repair, nullptr);
  EXPECT_EQ(repair->U64("linked_incident_id"), detect->U64("id"));

  std::vector<CorruptRange> corrupt;
  EXPECT_OK((*db)->protection()->AuditAll(&corrupt));
}

// ---------------------------------------------------------------------------
// Concurrency stress (run under TSan): in-place repairs vs live writers.

TEST(Repair, ConcurrentTpcbWritersWithInPlaceRepairs) {
  TempDir dir;
  TpcbConfig cfg;
  cfg.accounts = 2000;
  cfg.tellers = 200;
  cfg.branches = 20;
  cfg.ops_per_txn = 25;
  cfg.history_capacity = 20000;
  cfg.seed = 7;

  DatabaseOptions opts;
  opts.path = dir.path();
  opts.page_size = 4096;
  opts.arena_size =
      (cfg.MinArenaSize(opts.page_size) + (4u << 20) + 4095) & ~uint64_t{4095};
  opts.protection.scheme = ProtectionScheme::kDataCodeword;
  opts.protection.region_size = kRegion;
  // 32, not the production default 64: a repair holds every member region's
  // protection latch at once, and TSan's deadlock detector aborts the
  // process (a hard CHECK, not a report) past 64 simultaneously held locks.
  // 32 keeps the run under the cap with lock-order verification still on.
  opts.protection.parity_group_regions = 32;
  Result<std::unique_ptr<Database>> dbr = Database::Open(opts);
  ASSERT_OK(dbr.status());
  Database* db = dbr->get();

  TpcbWorkload workload(db, cfg);
  ASSERT_OK(workload.Setup());

  // A dedicated victim table: its region-aligned records are the only bytes
  // the injector touches, so wild writes never race a legitimate update to
  // the same region (repairs may still share parity groups and latch
  // stripes with the TPC-B tables — that contention is the point).
  constexpr uint32_t kVictims = 16;
  Result<Transaction*> txn = db->Begin();
  ASSERT_OK(txn.status());
  Result<TableId> victim = db->CreateTable(*txn, "victim", kRegion, kVictims);
  ASSERT_OK(victim.status());
  for (uint32_t i = 0; i < kVictims; ++i) {
    std::string rec(kRegion, static_cast<char>('A' + i));
    ASSERT_OK(db->Insert(*txn, *victim, Slice(rec)).status());
  }
  ASSERT_OK(db->Commit(*txn));
  ASSERT_EQ(db->image()->RecordOff(*victim, 0) % kRegion, 0u);

  constexpr int kThreads = 8;
  constexpr uint64_t kOps = 4000;
  std::atomic<bool> writers_ok{true};
  std::thread writers([&] {
    Result<double> r = workload.RunConcurrent(kThreads, kOps);
    if (!r.ok()) writers_ok.store(false);
  });

  FaultInjector inject(db, 11);
  int repaired = 0;
  for (int iter = 0; iter < 24; ++iter) {
    uint32_t slot = static_cast<uint32_t>(iter) % kVictims;
    DbPtr off = db->image()->RecordOff(*victim, slot);
    // Distinct bytes per word: a repeated 4-byte pattern would XOR to zero
    // in the 32-bit codeword lanes and the write would go undetected.
    char garbage[8];
    for (size_t i = 0; i < sizeof(garbage); ++i) {
      garbage[i] = static_cast<char>(0x11 + 17 * iter + 31 * i);
    }
    if (!inject.WildWriteAt(off + 5, Slice(garbage, sizeof(garbage)))
             .changed_bits) {
      continue;
    }
    std::vector<CorruptRange> corrupt;
    ASSERT_TRUE(
        db->protection()->AuditRange(off, kRegion, &corrupt).IsCorruption());
    ASSERT_EQ(corrupt.size(), 1u);
    ASSERT_TRUE(db->TryRepairRanges(corrupt, IncidentSource::kAudit));
    corrupt.clear();
    EXPECT_OK(db->protection()->AuditRange(off, kRegion, &corrupt));
    ++repaired;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writers.join();
  EXPECT_TRUE(writers_ok.load());
  EXPECT_GT(repaired, 0);

  // No lost updates (TPC-B invariants hold), the victim records carry their
  // committed bytes, and the whole image re-verifies clean.
  ASSERT_OK(workload.CheckConsistency());
  txn = db->Begin();
  ASSERT_OK(txn.status());
  for (uint32_t i = 0; i < kVictims; ++i) {
    std::string rec;
    ASSERT_OK(db->Read(*txn, *victim, i, &rec));
    EXPECT_EQ(rec, std::string(kRegion, static_cast<char>('A' + i)));
  }
  ASSERT_OK(db->Commit(*txn));
  std::vector<CorruptRange> corrupt;
  EXPECT_OK(db->protection()->AuditAll(&corrupt));
}

}  // namespace
}  // namespace cwdb
