// Tests of the transactional hash index: CRUD, collision chains, atomic
// rollback with the data it indexes, crash recovery, concurrent use, and —
// the paper-specific property — corruption tracing *through index
// traversals* under read logging.

#include "index/hash_index.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/random.h"
#include "faultinject/fault_injector.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

class HashIndexTest : public ::testing::Test {
 protected:
  void Open(ProtectionScheme scheme = ProtectionScheme::kDataCodeword) {
    auto db = Database::Open(SmallDbOptions(dir_.path(), scheme, 128));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  // Creates a data table + index with few buckets (forcing collisions).
  void CreateIndexed(uint64_t buckets = 4) {
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "data", 64, 256);
    ASSERT_TRUE(t.ok());
    data_ = *t;
    auto idx = HashIndex::Create(db_.get(), *txn, "by_key", buckets, 256);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    index_ = std::make_unique<HashIndex>(std::move(idx).value());
    ASSERT_OK(db_->Commit(*txn));
  }

  // Inserts a record keyed by `key` and indexes it; returns the data slot.
  uint32_t Put(Transaction* txn, uint64_t key, const std::string& value) {
    std::string record(64, '\0');
    std::memcpy(record.data(), &key, 8);
    std::memcpy(record.data() + 8, value.data(),
                std::min<size_t>(value.size(), 48));
    auto rid = db_->Insert(txn, data_, record);
    EXPECT_TRUE(rid.ok());
    EXPECT_OK(index_->Insert(txn, key, rid->slot));
    return rid->slot;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId data_ = 0;
  std::unique_ptr<HashIndex> index_;
};

TEST_F(HashIndexTest, InsertLookupEraseRoundTrip) {
  Open();
  CreateIndexed();
  auto txn = db_->Begin();
  uint32_t s1 = Put(*txn, 1001, "alpha");
  uint32_t s2 = Put(*txn, 1002, "beta");
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  auto f1 = index_->Lookup(*txn, 1001);
  auto f2 = index_->Lookup(*txn, 1002);
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_EQ(*f1, s1);
  EXPECT_EQ(*f2, s2);
  EXPECT_TRUE(index_->Lookup(*txn, 9999).status().IsNotFound());

  ASSERT_OK(index_->Erase(*txn, 1001));
  EXPECT_TRUE(index_->Lookup(*txn, 1001).status().IsNotFound());
  ASSERT_TRUE(index_->Lookup(*txn, 1002).ok());  // Chain intact.
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(index_->EntryCount(), 1u);
}

TEST_F(HashIndexTest, DuplicateKeyRefused) {
  Open();
  CreateIndexed();
  auto txn = db_->Begin();
  Put(*txn, 7, "first");
  EXPECT_EQ(index_->Insert(*txn, 7, 42).code(),
            Status::Code::kAlreadyExists);
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(HashIndexTest, CollisionChainsWithSingleBucket) {
  Open();
  CreateIndexed(/*buckets=*/1);  // Everything collides.
  auto txn = db_->Begin();
  std::map<uint64_t, uint32_t> expected;
  for (uint64_t k = 0; k < 40; ++k) {
    std::string val = "v";
    val += std::to_string(k);
    expected[k] = Put(*txn, k, val);
  }
  ASSERT_OK(db_->Commit(*txn));

  // Erase every third key, then verify all survivors resolve.
  txn = db_->Begin();
  for (uint64_t k = 0; k < 40; k += 3) {
    ASSERT_OK(index_->Erase(*txn, k));
    expected.erase(k);
  }
  for (uint64_t k = 0; k < 40; ++k) {
    auto found = index_->Lookup(*txn, k);
    if (expected.count(k)) {
      ASSERT_TRUE(found.ok()) << "key " << k;
      EXPECT_EQ(*found, expected[k]);
    } else {
      EXPECT_TRUE(found.status().IsNotFound()) << "key " << k;
    }
  }
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(index_->EntryCount(), expected.size());
}

TEST_F(HashIndexTest, AbortRollsBackIndexAndDataTogether) {
  Open();
  CreateIndexed();
  auto txn = db_->Begin();
  Put(*txn, 5, "keep");
  ASSERT_OK(db_->Commit(*txn));

  txn = db_->Begin();
  Put(*txn, 6, "discard");
  ASSERT_OK(index_->Erase(*txn, 5));
  ASSERT_OK(db_->Abort(*txn));

  txn = db_->Begin();
  EXPECT_TRUE(index_->Lookup(*txn, 5).ok());  // Erase undone.
  EXPECT_TRUE(index_->Lookup(*txn, 6).status().IsNotFound());  // Insert undone.
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(index_->EntryCount(), 1u);
  EXPECT_EQ(db_->CountRecords(data_), 1u);
}

TEST_F(HashIndexTest, SurvivesCrashRecovery) {
  Open();
  CreateIndexed(8);
  auto txn = db_->Begin();
  for (uint64_t k = 100; k < 130; ++k) Put(*txn, k, "x");
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());
  txn = db_->Begin();
  for (uint64_t k = 130; k < 140; ++k) Put(*txn, k, "y");
  ASSERT_OK(index_->Erase(*txn, 105));
  ASSERT_OK(db_->Commit(*txn));

  ASSERT_OK(db_->CrashAndRecover());
  auto idx = HashIndex::Open(db_.get(), "by_key");
  ASSERT_TRUE(idx.ok());
  txn = db_->Begin();
  EXPECT_TRUE(idx->Lookup(*txn, 105).status().IsNotFound());
  for (uint64_t k = 100; k < 140; ++k) {
    if (k == 105) continue;
    EXPECT_TRUE(idx->Lookup(*txn, k).ok()) << "key " << k;
  }
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(idx->EntryCount(), 39u);
}

TEST_F(HashIndexTest, UpdateRepointsKey) {
  Open();
  CreateIndexed();
  auto txn = db_->Begin();
  Put(*txn, 11, "old");
  ASSERT_OK(index_->Update(*txn, 11, 77));
  auto found = index_->Lookup(*txn, 11);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 77u);
  EXPECT_TRUE(index_->Update(*txn, 404, 1).IsNotFound());
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(HashIndexTest, CorruptionTracedThroughIndexTraversal) {
  // The headline property: a transaction that only *looked up a key* —
  // never touching the corrupted entry's data record — read the corrupt
  // entry bytes during its chain traversal, so delete-transaction recovery
  // deletes it. Index reads are first-class reads.
  Open(ProtectionScheme::kReadLog);
  CreateIndexed(/*buckets=*/1);  // One chain: traversals read every entry.
  auto txn = db_->Begin();
  Put(*txn, 1, "one");
  Put(*txn, 2, "two");
  uint32_t s3 = Put(*txn, 3, "three");
  (void)s3;
  ASSERT_OK(db_->Commit(*txn));
  ASSERT_OK(db_->Checkpoint());

  // Wild write into the entries table (an index entry, not user data).
  FaultInjector inject(db_.get(), 21);
  DbPtr entry_off = db_->image()->RecordOff(index_->entries_table(), 1);
  inject.WildWriteAt(entry_off + 8, "\x99\x99\x99\x99");

  // This transaction looks up key 1 (traversing the corrupt entry) and
  // writes a data record based on the result.
  txn = db_->Begin();
  TxnId traverser = (*txn)->id();
  auto found = index_->Lookup(*txn, 1);
  ASSERT_TRUE(found.ok());
  ASSERT_OK(db_->Update(*txn, data_, *found, 8, "derived!"));
  ASSERT_OK(db_->Commit(*txn));

  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->clean);
  ASSERT_OK(db_->CrashAndRecover());
  const auto& deleted = db_->last_recovery_report().deleted_txns;
  EXPECT_NE(std::find(deleted.begin(), deleted.end(), traverser),
            deleted.end())
      << "index traversal of corrupt bytes must mark the reader";
  // The index itself recovered cleanly.
  auto idx = HashIndex::Open(db_.get(), "by_key");
  ASSERT_TRUE(idx.ok());
  txn = db_->Begin();
  for (uint64_t k = 1; k <= 3; ++k) {
    EXPECT_TRUE(idx->Lookup(*txn, k).ok()) << "key " << k;
  }
  ASSERT_OK(db_->Commit(*txn));
}

TEST_F(HashIndexTest, ConcurrentInsertersOnDisjointKeys) {
  Open();
  CreateIndexed(16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < kPerThread; ++j) {
        auto txn = db_->Begin();
        if (!txn.ok()) {
          ++failures;
          return;
        }
        uint64_t key = static_cast<uint64_t>(i) * 1000 + j;
        std::string record(64, '\0');
        std::memcpy(record.data(), &key, 8);
        auto rid = db_->Insert(*txn, data_, record);
        Status s = rid.ok() ? index_->Insert(*txn, key, rid->slot)
                            : rid.status();
        if (s.ok()) s = db_->Commit(*txn);
        if (s.IsDeadlock()) {
          (void)db_->Abort(*txn);
          --j;  // Retry this key.
          continue;
        }
        if (!s.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(index_->EntryCount(),
            static_cast<uint64_t>(kThreads * kPerThread));
  auto txn = db_->Begin();
  for (int i = 0; i < kThreads; ++i) {
    for (int j = 0; j < kPerThread; ++j) {
      EXPECT_TRUE(
          index_->Lookup(*txn, static_cast<uint64_t>(i) * 1000 + j).ok());
    }
  }
  ASSERT_OK(db_->Commit(*txn));
  auto audit = db_->Audit();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean);
}

TEST_F(HashIndexTest, RandomizedAgainstMapOracle) {
  Open();
  CreateIndexed(8);
  Random rng(4242);
  std::map<uint64_t, uint32_t> oracle;
  auto txn = db_->Begin();
  for (int i = 0; i < 400; ++i) {
    uint64_t key = rng.Uniform(60);
    int op = static_cast<int>(rng.Uniform(3));
    if (op == 0 && !oracle.count(key) && oracle.size() < 200) {
      uint32_t slot = Put(*txn, key, "r");
      oracle[key] = slot;
    } else if (op == 1 && oracle.count(key)) {
      ASSERT_OK(index_->Erase(*txn, key));
      ASSERT_OK(db_->Delete(*txn, data_, oracle[key]));
      oracle.erase(key);
    } else {
      auto found = index_->Lookup(*txn, key);
      if (oracle.count(key)) {
        ASSERT_TRUE(found.ok()) << "key " << key;
        EXPECT_EQ(*found, oracle[key]);
      } else {
        EXPECT_TRUE(found.status().IsNotFound()) << "key " << key;
      }
    }
    if (i % 100 == 99) {
      ASSERT_OK(db_->Commit(*txn));
      txn = db_->Begin();
    }
  }
  ASSERT_OK(db_->Commit(*txn));
  EXPECT_EQ(index_->EntryCount(), oracle.size());
}

}  // namespace
}  // namespace cwdb
