// Chaos test: long randomized interleavings of transfers, aborts, wild
// writes, audits, checkpoints and crash/corruption recoveries, checking a
// global application invariant after every recovery.
//
// The invariant: transfers move balance between accounts, so the sum of
// all balances is zero in every committed state. Every transaction
// preserves it, so any delete-history (a subset of whole transactions,
// §4.1) preserves it too — corruption recovery must always restore a
// Σ = 0 state no matter what the wild writes did in between.
//
// Scheme discipline: under Codeword Read Logging corruption recovery runs
// on every restart, so any recovery cleanses the database. Under plain
// Read Logging a crash without a noted audit failure would let carriers
// survive (the paper's §4.3 premise is that detection precedes recovery),
// so the ReadLog variant audits before crashing whenever corruption is
// outstanding — modelling the deployed protocol.

#include <gtest/gtest.h>

#include <cstring>

#include "faultinject/fault_injector.h"
#include "tests/test_util.h"

namespace cwdb {
namespace {

constexpr uint32_t kRec = 128;
constexpr uint32_t kAccounts = 24;

struct ChaosParam {
  ProtectionScheme scheme;
  uint64_t seed;
};

class ChaosTest : public ::testing::TestWithParam<ChaosParam> {
 protected:
  void Open() {
    auto db = Database::Open(
        SmallDbOptions(dir_.path(), GetParam().scheme, kRec));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto txn = db_->Begin();
    auto t = db_->CreateTable(*txn, "accts", kRec, kAccounts);
    ASSERT_TRUE(t.ok());
    table_ = *t;
    std::string record(kRec, '\0');  // Balance 0 at offset 0.
    for (uint32_t i = 0; i < kAccounts; ++i) {
      ASSERT_TRUE(db_->Insert(*txn, table_, record).ok());
    }
    ASSERT_OK(db_->Commit(*txn));
    ASSERT_OK(db_->Checkpoint());
  }

  uint64_t Balance(uint32_t slot) {
    // Unsigned (mod 2^64) arithmetic throughout: a wild write can put an
    // arbitrary bit pattern in a balance, and signed overflow on garbage
    // would be UB; Σ == 0 (mod 2^64) is the same invariant.
    uint64_t b;
    std::memcpy(&b, db_->image()->At(db_->image()->RecordOff(table_, slot)),
                8);
    return b;
  }

  void CheckInvariants(const char* where) {
    uint64_t sum = 0;
    for (uint32_t i = 0; i < kAccounts; ++i) sum += Balance(i);
    EXPECT_EQ(sum, 0u) << where;
    EXPECT_TRUE(db_->VerifyIntegrity().empty()) << where;
    auto audit = db_->Audit();
    ASSERT_TRUE(audit.ok()) << where;
    EXPECT_TRUE(audit->clean) << where;
  }

  // One transfer transaction: read two balances, move a random delta.
  Status Transfer(Random* rng) {
    auto txn = db_->Begin();
    CWDB_RETURN_IF_ERROR(txn.status());
    uint32_t a = static_cast<uint32_t>(rng->Uniform(kAccounts));
    uint32_t b = static_cast<uint32_t>(rng->Uniform(kAccounts));
    if (a == b) b = (a + 1) % kAccounts;  // Self-transfer would lose-update.
    uint64_t delta = rng->Uniform(1000) - 500;  // Wraps: mod-2^64 transfer.
    uint64_t ba, bb;
    Status s = db_->ReadField(*txn, table_, a, 0, 8, &ba);
    if (s.ok()) s = db_->ReadField(*txn, table_, b, 0, 8, &bb);
    if (s.ok()) {
      ba -= delta;
      s = db_->Update(*txn, table_, a, 0,
                      Slice(reinterpret_cast<const char*>(&ba), 8));
    }
    if (s.ok()) {
      bb += delta;
      s = db_->Update(*txn, table_, b, 0,
                      Slice(reinterpret_cast<const char*>(&bb), 8));
    }
    if (!s.ok()) {
      (void)db_->Abort(*txn);
      return s;
    }
    if (rng->OneIn(8)) return db_->Abort(*txn);  // Random abort.
    return db_->Commit(*txn);
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

TEST_P(ChaosTest, InvariantSurvivesEverything) {
  Open();
  Random rng(GetParam().seed);
  FaultInjector inject(db_.get(), GetParam().seed ^ 0xC4A05);
  bool corruption_pending = false;
  const bool recover_every_restart =
      GetParam().scheme == ProtectionScheme::kCodewordReadLog;
  int recoveries = 0;

  for (int round = 0; round < 60; ++round) {
    int burst = 1 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < burst; ++i) {
      Status s = Transfer(&rng);
      // Precheck-free schemes read corrupt bytes without error; any other
      // failure is a real bug.
      ASSERT_TRUE(s.ok()) << s.ToString();
    }

    int action = static_cast<int>(rng.Uniform(10));
    if (action < 2) {
      // Wild write into a random account record.
      uint32_t victim = static_cast<uint32_t>(rng.Uniform(kAccounts));
      std::string garbage(1 + rng.Uniform(16), '\0');
      for (auto& c : garbage) c = static_cast<char>(rng.Next32());
      auto outcome = inject.WildWriteAt(
          db_->image()->RecordOff(table_, victim) + rng.Uniform(kRec - 16),
          garbage);
      corruption_pending = corruption_pending || outcome.changed_bits;
    } else if (action < 4) {
      // Audit; on failure, crash into corruption recovery.
      auto report = db_->Audit();
      ASSERT_TRUE(report.ok());
      EXPECT_EQ(report->clean, !corruption_pending);
      if (!report->clean) {
        ASSERT_OK(db_->CrashAndRecover());
        corruption_pending = false;
        ++recoveries;
        CheckInvariants("after audit-driven recovery");
      }
    } else if (action < 5) {
      // Checkpoint; certification catches outstanding corruption.
      Status s = db_->Checkpoint();
      if (corruption_pending) {
        EXPECT_TRUE(s.IsCorruption()) << s.ToString();
        ASSERT_OK(db_->CrashAndRecover());
        corruption_pending = false;
        ++recoveries;
        CheckInvariants("after certification-driven recovery");
      } else {
        ASSERT_OK(s);
      }
    } else if (action < 6) {
      // Plain crash. Under plain ReadLog, follow the deployed protocol:
      // audit first if corruption may be outstanding.
      if (corruption_pending && !recover_every_restart) {
        auto report = db_->Audit();
        ASSERT_TRUE(report.ok());
        ASSERT_FALSE(report->clean);
      }
      ASSERT_OK(db_->CrashAndRecover());
      corruption_pending = false;
      ++recoveries;
      CheckInvariants("after crash recovery");
    }
  }
  // Final settle: detect anything outstanding, recover, verify.
  auto report = db_->Audit();
  ASSERT_TRUE(report.ok());
  if (!report->clean) {
    ASSERT_OK(db_->CrashAndRecover());
    ++recoveries;
  }
  CheckInvariants("final");
  // The schedule virtually always exercises at least one recovery.
  EXPECT_GT(recoveries, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Runs, ChaosTest,
    ::testing::Values(ChaosParam{ProtectionScheme::kReadLog, 1},
                      ChaosParam{ProtectionScheme::kReadLog, 2},
                      ChaosParam{ProtectionScheme::kReadLog, 3},
                      ChaosParam{ProtectionScheme::kCodewordReadLog, 4},
                      ChaosParam{ProtectionScheme::kCodewordReadLog, 5},
                      ChaosParam{ProtectionScheme::kCodewordReadLog, 6}),
    [](const ::testing::TestParamInfo<ChaosParam>& info) {
      return std::string(info.param.scheme == ProtectionScheme::kReadLog
                             ? "ReadLog"
                             : "CWReadLog") +
             "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace cwdb
