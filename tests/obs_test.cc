// Unit tests for the observability layer (src/obs): sharded counters,
// log-bucketed histograms, the event-trace ring buffer, the registry's
// snapshot/JSON exporters and the detection-latency fault matcher.

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cwdb {
namespace {

TEST(CounterTest, SingleThreadAddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ShardedAddsFromManyThreadsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 12);
  g.Set(-4);
  EXPECT_EQ(g.Value(), -4);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i holds values with bit_width == i: [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), 63u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 8u);
  EXPECT_EQ(Histogram::BucketUpperBound(63), UINT64_MAX);
}

TEST(HistogramTest, SnapshotStats) {
  Histogram h;
  h.Record(1);
  h.Record(100);
  h.Record(1000);
  h.Record(10000);
  Histogram::Snapshot s = h.Capture();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 11101u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 10000u);
  // p50 falls in the bucket of 100 -> upper bound 128.
  EXPECT_EQ(s.p50, 128u);
  // p99/p95 land in the last bucket, clamped by the observed max.
  EXPECT_EQ(s.p99, 10000u);
  EXPECT_GE(s.p95, 1000u);
}

TEST(HistogramTest, QuantileOfEmptyIsZero) {
  Histogram h;
  Histogram::Snapshot s = h.Capture();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.Quantile(0.99), 0u);
}

TEST(HistogramTest, ConcurrentRecordsKeepExactCount) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(i + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
}

TEST(EventTraceTest, RecordsInOrder) {
  EventTrace trace(16);
  trace.Record(TraceEventType::kAuditPassBegin, 7, 1, 2);
  trace.Record(TraceEventType::kAuditPassEnd, 9, 3, 4);
  std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kAuditPassBegin);
  EXPECT_EQ(events[0].lsn, 7u);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 2u);
  EXPECT_EQ(events[1].type, TraceEventType::kAuditPassEnd);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
}

TEST(EventTraceTest, WraparoundKeepsNewestCapacityEvents) {
  constexpr size_t kCap = 8;
  EventTrace trace(kCap);
  for (uint64_t i = 0; i < 3 * kCap; ++i) {
    trace.Record(TraceEventType::kGroupCommitFlush, i, i, 0);
  }
  EXPECT_EQ(trace.recorded(), 3 * kCap);
  std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_EQ(events.size(), kCap);
  // The survivors are exactly the newest kCap events, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].lsn, 2 * kCap + i);
  }
}

TEST(EventTraceTest, ConcurrentWritersProduceUniqueSeqs) {
  EventTrace trace(64);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        trace.Record(TraceEventType::kFaultInjected, i, i, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(trace.recorded(), kThreads * kPerThread);
  std::vector<TraceEvent> events = trace.Snapshot();
  EXPECT_LE(events.size(), 64u);
  std::set<uint64_t> seqs;
  for (const TraceEvent& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), events.size()) << "duplicate seq in snapshot";
}

TEST(MetricsRegistryTest, InstrumentsAreInternedByName) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x.count");
  Counter* b = reg.counter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("y.count"), a);
  EXPECT_EQ(reg.histogram("x.lat"), reg.histogram("x.lat"));
  EXPECT_EQ(reg.gauge("x.g"), reg.gauge("x.g"));
}

TEST(MetricsRegistryTest, SnapshotAndJsonAreStable) {
  MetricsRegistry reg;
  reg.counter("b.count")->Add(2);
  reg.counter("a.count")->Add(1);
  reg.gauge("g.depth")->Set(-3);
  reg.histogram("h.lat")->Record(5);
  reg.trace().Record(TraceEventType::kCheckpoint, 11, 22, 33);

  MetricsSnapshot snap = reg.Capture();
  EXPECT_EQ(snap.CounterValue("a.count"), 1u);
  EXPECT_EQ(snap.CounterValue("b.count"), 2u);
  EXPECT_EQ(snap.GaugeValue("g.depth"), -3);
  ASSERT_NE(snap.FindHistogram("h.lat"), nullptr);
  EXPECT_EQ(snap.FindHistogram("h.lat")->h.count, 1u);

  std::string json = snap.ToJson();
  // Sorted keys, fixed field order: identical state -> identical bytes,
  // once the capture-time stamps (the only fields expected to move between
  // two captures of the same state) are equalized.
  MetricsSnapshot again = reg.Capture();
  EXPECT_GE(again.captured_mono_ns, snap.captured_mono_ns);
  EXPECT_EQ(again.boot_mono_ns, snap.boot_mono_ns);
  EXPECT_EQ(again.boot_wall_ns, snap.boot_wall_ns);
  again.captured_mono_ns = snap.captured_mono_ns;
  again.captured_wall_ns = snap.captured_wall_ns;
  EXPECT_EQ(json, again.ToJson());
  EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"boot_wall_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"g.depth\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));

  std::string text = snap.ToText();
  EXPECT_NE(text.find("a.count"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetByPrefix) {
  MetricsRegistry reg;
  reg.counter("txn.commits")->Add(5);
  reg.counter("wal.flushes")->Add(7);
  reg.histogram("txn.lat")->Record(1);
  reg.Reset("txn.");
  EXPECT_EQ(reg.counter("txn.commits")->Value(), 0u);
  EXPECT_EQ(reg.histogram("txn.lat")->Count(), 0u);
  EXPECT_EQ(reg.counter("wal.flushes")->Value(), 7u);
  reg.Reset();
  EXPECT_EQ(reg.counter("wal.flushes")->Value(), 0u);
}

TEST(MetricsRegistryTest, DetectionLatencyMatchesOverlappingFault) {
  MetricsRegistry reg;
  reg.NoteInjectedFault(1000, 16);
  // Non-overlapping detection matches nothing.
  EXPECT_EQ(reg.NoteDetection(2000, 16), 0u);
  // Overlapping detection matches, records a positive latency, and retires
  // the pending fault.
  EXPECT_EQ(reg.NoteDetection(992, 64), 1u);
  EXPECT_EQ(reg.NoteDetection(992, 64), 0u);
  Histogram::Snapshot lat =
      reg.histogram("protect.detection_latency_ns")->Capture();
  EXPECT_EQ(lat.count, 1u);
  EXPECT_GE(lat.min, 1u);
}

}  // namespace
}  // namespace cwdb
